// Channel setup (the paper's setup phase, Appendix A `Init`).
//
// Every pair of enclaves performs: remote attestation of each other's
// program (F3), an X25519 key exchange with the ephemeral public key bound
// into the quote's report_data (preventing quote relay / MITM by the host),
// and derivation of per-direction channel keys plus secret initial sequence
// numbers via HKDF.
//
// The paper has each peer *send* a random initial sequence number over the
// fresh channel; deriving both initial numbers from the shared secret is
// equivalent (they are uniformly random and secret from the host, which is
// all P6 uses) and saves one round trip. DESIGN.md §5 records this.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "sgx/attestation.hpp"
#include "sgx/measurement.hpp"

namespace sgxp2p::channel {

/// First (and only) handshake message each side emits: an attestation quote
/// whose report_data is the sender's ephemeral X25519 public key.
struct HandshakeMsg {
  NodeId sender = kNoNode;
  sgx::Quote quote;

  [[nodiscard]] Bytes serialize() const;
  static std::optional<HandshakeMsg> deserialize(ByteView data);
};

/// Directional key material for one established link.
struct LinkKeys {
  Bytes send_key;              // kAeadKeySize bytes
  Bytes recv_key;              // kAeadKeySize bytes
  std::uint64_t send_seq0 = 0; // initial wire sequence number, secret
  std::uint64_t recv_seq0 = 0;
};

/// Builds the local half of the handshake. `quote` must attest the caller's
/// program with report_data = the ephemeral X25519 public key (the enclave
/// produces it via its protected quote() capability).
HandshakeMsg make_handshake(NodeId self, sgx::Quote quote);

/// Verifies the peer's handshake (quote authenticity + expected program
/// measurement) and derives the link keys. Returns nullopt if attestation
/// fails — the peer is then excluded from the network (paper: setup phase
/// admits only attested peers).
std::optional<LinkKeys> complete_handshake(const HandshakeMsg& peer_msg,
                                           NodeId self, ByteView dh_private,
                                           const sgx::Measurement& expected,
                                           const sgx::SimIAS& ias);

}  // namespace sgxp2p::channel
