// SecureLink — the established blinded channel between two enclaves.
//
// Implements the Write/Read algorithms of PeerCh_sgx (Appendix A, Fig. 4):
// every payload is encrypted and MAC'd (encrypt-then-MAC) under keys only
// the two enclaves hold, with the program measurement bound into the
// associated data (the Fig. 4 H(π) check) and a per-message wire sequence
// number carried in the AEAD nonce. The receiving side enforces
// at-most-once delivery with a replay window, so a byzantine host replaying
// old ciphertexts — attack A5 — achieves nothing (Theorem A.2's reduction).
//
// What the host sees of a sealed message: uniformly random-looking bytes of
// length plaintext + kAeadOverhead. It cannot correlate content (P3), which
// is what rules out content-selective omission (attack A3, first type).
//
// Hot-path shape: the directional AEAD key schedules (ChaCha20 key split +
// HMAC pad midstates) are expanded once in the constructor, so seal/open do
// no per-message key work. The replay window is a fixed 1024-bit bitmap
// anchored at the lowest not-yet-accepted sequence — O(1) per message and
// constant memory, where the previous std::set grew with reordering depth.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "channel/handshake.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/aead.hpp"
#include "obs/metrics.hpp"
#include "sgx/measurement.hpp"

namespace sgxp2p::channel {

/// Width of the receive replay window in sequence numbers. A message whose
/// sequence is `kReplayWindow` or more ahead of the lowest outstanding one is
/// rejected: the window cannot advance past a hole, so accepting it would
/// either lose replay protection or require unbounded state. Network jitter
/// in the simulator and testbeds reorders by a handful of messages; 1024
/// leaves three orders of magnitude of slack.
inline constexpr std::uint64_t kReplayWindow = 1024;

class SecureLink {
 public:
  /// `self`/`peer` orient the channel; `keys` comes from complete_handshake.
  SecureLink(NodeId self, NodeId peer, LinkKeys keys,
             const sgx::Measurement& program);

  /// Seals a plaintext for the peer. Consumes one send sequence number.
  Bytes seal(ByteView plaintext);

  /// Opens an inbound blob. Returns nullopt when the MAC fails (forgery,
  /// corruption, wrong program), the sequence number was already accepted
  /// (replay), or the sequence is beyond the replay window (the sender ran
  /// more than kReplayWindow messages ahead of a hole). Out-of-order but
  /// fresh messages inside the window are accepted — reordering within a
  /// round is indistinguishable from network jitter; staleness across rounds
  /// is the protocol layer's P5 check.
  std::optional<Bytes> open(ByteView blob);

  /// Checkpoint support (src/recovery/): serializes the full link state —
  /// directional keys, send sequence, and the replay window — so a sealed
  /// enclave checkpoint can preserve an established channel across a crash.
  /// The output contains key material and must only ever travel inside
  /// Enclave::seal.
  [[nodiscard]] Bytes serialize() const;
  /// Restores a link from serialize() output. `program` must be the same
  /// measurement the link was built with (it is part of the AAD). Only the
  /// current "sgxp2p-link-v2" format is accepted; v1 checkpoints (sparse-set
  /// window) predate the bitmap and are rejected.
  static std::optional<SecureLink> deserialize(
      ByteView data, const sgx::Measurement& program);

  [[nodiscard]] NodeId peer() const { return peer_; }
  [[nodiscard]] std::uint64_t sealed_count() const { return sealed_count_; }
  [[nodiscard]] std::uint64_t opened_count() const { return opened_count_; }
  [[nodiscard]] std::uint64_t rejected_count() const { return rejected_count_; }
  /// Rejections that were replays (already-accepted sequence numbers), a
  /// subset of rejected_count(); the rest failed the MAC/length checks or
  /// overflowed the window.
  [[nodiscard]] std::uint64_t replay_count() const { return replay_count_; }
  /// Rejections of sequences at or beyond recv_base + kReplayWindow, a
  /// subset of rejected_count().
  [[nodiscard]] std::uint64_t window_overflow_count() const {
    return window_overflow_count_;
  }

 private:
  [[nodiscard]] bool window_bit(std::uint64_t seq) const {
    return (recv_window_[(seq % kReplayWindow) / 64] >>
            (seq % kReplayWindow % 64)) &
           1u;
  }
  void set_window_bit(std::uint64_t seq) {
    recv_window_[(seq % kReplayWindow) / 64] |=
        std::uint64_t{1} << (seq % kReplayWindow % 64);
  }
  void clear_window_bit(std::uint64_t seq) {
    recv_window_[(seq % kReplayWindow) / 64] &=
        ~(std::uint64_t{1} << (seq % kReplayWindow % 64));
  }

  NodeId self_;
  NodeId peer_;
  LinkKeys keys_;
  crypto::AeadKey send_aead_;  // key schedule expanded once per link
  crypto::AeadKey recv_aead_;
  Bytes aad_send_;
  Bytes aad_recv_;
  std::uint64_t send_seq_;
  // Replay window: recv_base_ is the lowest not-yet-accepted sequence; the
  // bitmap holds accept bits for [recv_base_, recv_base_ + kReplayWindow),
  // indexed seq % kReplayWindow. The base advances over contiguous accepted
  // low bits (clearing them as it goes), exactly the old set-compaction.
  std::uint64_t recv_base_;
  std::array<std::uint64_t, kReplayWindow / 64> recv_window_{};
  std::uint64_t sealed_count_ = 0;
  std::uint64_t opened_count_ = 0;
  std::uint64_t rejected_count_ = 0;
  std::uint64_t replay_count_ = 0;
  std::uint64_t window_overflow_count_ = 0;
};

/// channel.* registry handles shared by every SecureLink (one resolution per
/// registry instead of one per link — setup builds N² links). Cached per
/// thread and keyed on MetricsRegistry::current().id(), so rebinding the
/// current registry (per-sweep-point isolation) transparently re-resolves.
struct ChannelMetrics {
  obs::Counter* sealed = nullptr;
  obs::Counter* opened = nullptr;
  obs::Counter* replay_rejected = nullptr;
  obs::Counter* mac_failed = nullptr;
  obs::Counter* window_overflow = nullptr;
  static ChannelMetrics& get();
};

}  // namespace sgxp2p::channel
