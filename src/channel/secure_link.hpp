// SecureLink — the established blinded channel between two enclaves.
//
// Implements the Write/Read algorithms of PeerCh_sgx (Appendix A, Fig. 4):
// every payload is encrypted and MAC'd (encrypt-then-MAC) under keys only
// the two enclaves hold, with the program measurement bound into the
// associated data (the Fig. 4 H(π) check) and a per-message wire sequence
// number carried in the AEAD nonce. The receiving side enforces
// at-most-once delivery with a replay window, so a byzantine host replaying
// old ciphertexts — attack A5 — achieves nothing (Theorem A.2's reduction).
//
// What the host sees of a sealed message: uniformly random-looking bytes of
// length plaintext + kAeadOverhead. It cannot correlate content (P3), which
// is what rules out content-selective omission (attack A3, first type).
#pragma once

#include <cstdint>
#include <optional>
#include <set>

#include "channel/handshake.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "obs/metrics.hpp"
#include "sgx/measurement.hpp"

namespace sgxp2p::channel {

class SecureLink {
 public:
  /// `self`/`peer` orient the channel; `keys` comes from complete_handshake.
  SecureLink(NodeId self, NodeId peer, LinkKeys keys,
             const sgx::Measurement& program);

  /// Seals a plaintext for the peer. Consumes one send sequence number.
  Bytes seal(ByteView plaintext);

  /// Opens an inbound blob. Returns nullopt when the MAC fails (forgery,
  /// corruption, wrong program) or the sequence number was already accepted
  /// (replay). Out-of-order but fresh messages are accepted — reordering
  /// within a round is indistinguishable from network jitter; staleness
  /// across rounds is the protocol layer's P5 check.
  std::optional<Bytes> open(ByteView blob);

  /// Checkpoint support (src/recovery/): serializes the full link state —
  /// directional keys, send sequence, and the replay window — so a sealed
  /// enclave checkpoint can preserve an established channel across a crash.
  /// The output contains key material and must only ever travel inside
  /// Enclave::seal.
  [[nodiscard]] Bytes serialize() const;
  /// Restores a link from serialize() output. `program` must be the same
  /// measurement the link was built with (it is part of the AAD).
  static std::optional<SecureLink> deserialize(
      ByteView data, const sgx::Measurement& program);

  [[nodiscard]] NodeId peer() const { return peer_; }
  [[nodiscard]] std::uint64_t sealed_count() const { return sealed_count_; }
  [[nodiscard]] std::uint64_t opened_count() const { return opened_count_; }
  [[nodiscard]] std::uint64_t rejected_count() const { return rejected_count_; }
  /// Rejections that were replays (already-accepted sequence numbers), a
  /// subset of rejected_count(); the rest failed the MAC/length checks.
  [[nodiscard]] std::uint64_t replay_count() const { return replay_count_; }

 private:
  NodeId self_;
  NodeId peer_;
  LinkKeys keys_;
  Bytes aad_send_;
  Bytes aad_recv_;
  std::uint64_t send_seq_;
  // Replay window: lowest not-yet-seen recv sequence + the sparse set of
  // accepted sequences above it.
  std::uint64_t recv_next_;
  std::set<std::uint64_t> recv_seen_;
  std::uint64_t sealed_count_ = 0;
  std::uint64_t opened_count_ = 0;
  std::uint64_t rejected_count_ = 0;
  std::uint64_t replay_count_ = 0;
};

/// Process-wide channel.* registry handles, shared by every SecureLink (one
/// resolution instead of one per link — setup builds N² links).
struct ChannelMetrics {
  obs::Counter& sealed;
  obs::Counter& opened;
  obs::Counter& replay_rejected;
  obs::Counter& mac_failed;
  static ChannelMetrics& get();
};

}  // namespace sgxp2p::channel
