#include "channel/handshake.hpp"

#include "common/serde.hpp"
#include "crypto/hmac.hpp"
#include "crypto/x25519.hpp"

namespace sgxp2p::channel {

Bytes HandshakeMsg::serialize() const {
  BinaryWriter w;
  w.u32(sender);
  w.bytes(quote.serialize());
  return w.take();
}

std::optional<HandshakeMsg> HandshakeMsg::deserialize(ByteView data) {
  BinaryReader r(data);
  HandshakeMsg msg;
  msg.sender = r.u32();
  Bytes quote_bytes = r.bytes();
  if (!r.done()) return std::nullopt;
  auto quote = sgx::Quote::deserialize(quote_bytes);
  if (!quote) return std::nullopt;
  msg.quote = std::move(*quote);
  return msg;
}

HandshakeMsg make_handshake(NodeId self, sgx::Quote quote) {
  return HandshakeMsg{self, std::move(quote)};
}

std::optional<LinkKeys> complete_handshake(const HandshakeMsg& peer_msg,
                                           NodeId self, ByteView dh_private,
                                           const sgx::Measurement& expected,
                                           const sgx::SimIAS& ias) {
  if (!ias.verify(peer_msg.quote, expected)) return std::nullopt;
  if (peer_msg.quote.report_data.size() != crypto::kX25519KeySize) {
    return std::nullopt;
  }
  if (peer_msg.sender == self) return std::nullopt;

  Bytes shared = crypto::x25519_shared(dh_private, peer_msg.quote.report_data);

  // Orientation-independent derivation: both ends compute the same OKM from
  // (shared, lo-id, hi-id, measurement) and slice it by direction.
  NodeId lo = std::min(self, peer_msg.sender);
  NodeId hi = std::max(self, peer_msg.sender);
  BinaryWriter info;
  info.str("sgxp2p-link-v1");
  info.u32(lo);
  info.u32(hi);
  info.raw(ByteView(expected.data(), expected.size()));

  constexpr std::size_t kKeyLen = 64;  // crypto::kAeadKeySize
  Bytes okm = crypto::hkdf(to_bytes("sgxp2p-channel"), shared, info.view(),
                           2 * kKeyLen + 16);
  Bytes key_lo_to_hi(okm.begin(), okm.begin() + kKeyLen);
  Bytes key_hi_to_lo(okm.begin() + kKeyLen, okm.begin() + 2 * kKeyLen);
  std::uint64_t seq_lo_to_hi = load_le64(okm.data() + 2 * kKeyLen);
  std::uint64_t seq_hi_to_lo = load_le64(okm.data() + 2 * kKeyLen + 8);

  LinkKeys keys;
  if (self == lo) {
    keys.send_key = std::move(key_lo_to_hi);
    keys.recv_key = std::move(key_hi_to_lo);
    keys.send_seq0 = seq_lo_to_hi;
    keys.recv_seq0 = seq_hi_to_lo;
  } else {
    keys.send_key = std::move(key_hi_to_lo);
    keys.recv_key = std::move(key_lo_to_hi);
    keys.send_seq0 = seq_hi_to_lo;
    keys.recv_seq0 = seq_lo_to_hi;
  }
  return keys;
}

}  // namespace sgxp2p::channel
