#include "channel/secure_link.hpp"

#include "common/log.hpp"
#include "common/serde.hpp"
#include "crypto/aead.hpp"

namespace sgxp2p::channel {

namespace {
Bytes direction_aad(NodeId from, NodeId to, const sgx::Measurement& program) {
  BinaryWriter w;
  w.str("sgxp2p-msg-v1");
  w.u32(from);
  w.u32(to);
  w.raw(ByteView(program.data(), program.size()));
  return w.take();
}
}  // namespace

ChannelMetrics& ChannelMetrics::get() {
  static ChannelMetrics metrics{
      obs::MetricsRegistry::global().counter("channel.sealed"),
      obs::MetricsRegistry::global().counter("channel.opened"),
      obs::MetricsRegistry::global().counter("channel.replay_rejected"),
      obs::MetricsRegistry::global().counter("channel.mac_failed")};
  return metrics;
}

SecureLink::SecureLink(NodeId self, NodeId peer, LinkKeys keys,
                       const sgx::Measurement& program)
    : self_(self),
      peer_(peer),
      keys_(std::move(keys)),
      aad_send_(direction_aad(self, peer, program)),
      aad_recv_(direction_aad(peer, self, program)),
      send_seq_(keys_.send_seq0),
      recv_next_(keys_.recv_seq0) {}

Bytes SecureLink::serialize() const {
  BinaryWriter w;
  w.str("sgxp2p-link-v1");
  w.u32(self_);
  w.u32(peer_);
  w.bytes(keys_.send_key);
  w.bytes(keys_.recv_key);
  w.u64(send_seq_);
  w.u64(recv_next_);
  w.u32(static_cast<std::uint32_t>(recv_seen_.size()));
  for (std::uint64_t seq : recv_seen_) w.u64(seq);
  return w.take();
}

std::optional<SecureLink> SecureLink::deserialize(
    ByteView data, const sgx::Measurement& program) {
  BinaryReader r(data);
  if (r.str() != "sgxp2p-link-v1") return std::nullopt;
  NodeId self = r.u32();
  NodeId peer = r.u32();
  LinkKeys keys;
  keys.send_key = r.bytes();
  keys.recv_key = r.bytes();
  // Seed the counters from the saved live values: the restored link resumes
  // mid-stream (no nonce reuse, replay window intact).
  keys.send_seq0 = r.u64();
  keys.recv_seq0 = r.u64();
  std::uint32_t n_seen = r.u32();
  if (!r.ok() || n_seen > 1 << 20) return std::nullopt;
  std::set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < n_seen; ++i) seen.insert(r.u64());
  if (!r.done()) return std::nullopt;
  if (keys.send_key.size() != crypto::kAeadKeySize ||
      keys.recv_key.size() != crypto::kAeadKeySize) {
    return std::nullopt;
  }
  SecureLink link(self, peer, std::move(keys), program);
  link.recv_seen_ = std::move(seen);
  return link;
}

Bytes SecureLink::seal(ByteView plaintext) {
  std::uint8_t nonce[crypto::kAeadNonceSize] = {};
  store_le64(nonce, send_seq_++);
  ++sealed_count_;
  ChannelMetrics::get().sealed.inc();
  return crypto::aead_seal(keys_.send_key, ByteView(nonce, sizeof nonce),
                           aad_send_, plaintext);
}

std::optional<Bytes> SecureLink::open(ByteView blob) {
  if (blob.size() < crypto::kAeadOverhead) {
    ++rejected_count_;
    ChannelMetrics::get().mac_failed.inc();
    return std::nullopt;
  }
  // The wire sequence number rides in the nonce (authenticated by the AEAD).
  std::uint64_t seq = load_le64(blob.data());
  if (seq < recv_next_ || recv_seen_.contains(seq)) {
    LOG_DEBUG("channel: replayed seq ", seq, " rejected");
    ++rejected_count_;
    ++replay_count_;
    ChannelMetrics::get().replay_rejected.inc();
    return std::nullopt;  // replay
  }
  auto plaintext = crypto::aead_open(keys_.recv_key, aad_recv_, blob);
  if (!plaintext) {
    ++rejected_count_;
    ChannelMetrics::get().mac_failed.inc();
    return std::nullopt;
  }
  // Mark accepted; compact the window when the low end becomes contiguous.
  recv_seen_.insert(seq);
  while (recv_seen_.contains(recv_next_)) {
    recv_seen_.erase(recv_next_);
    ++recv_next_;
  }
  ++opened_count_;
  ChannelMetrics::get().opened.inc();
  return plaintext;
}

}  // namespace sgxp2p::channel
