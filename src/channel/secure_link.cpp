#include "channel/secure_link.hpp"

#include "common/log.hpp"
#include "common/serde.hpp"
#include "crypto/aead.hpp"

namespace sgxp2p::channel {

namespace {
Bytes direction_aad(NodeId from, NodeId to, const sgx::Measurement& program) {
  BinaryWriter w;
  w.str("sgxp2p-msg-v1");
  w.u32(from);
  w.u32(to);
  w.raw(ByteView(program.data(), program.size()));
  return w.take();
}
}  // namespace

ChannelMetrics& ChannelMetrics::get() {
  static ChannelMetrics metrics{
      obs::MetricsRegistry::global().counter("channel.sealed"),
      obs::MetricsRegistry::global().counter("channel.opened"),
      obs::MetricsRegistry::global().counter("channel.replay_rejected"),
      obs::MetricsRegistry::global().counter("channel.mac_failed")};
  return metrics;
}

SecureLink::SecureLink(NodeId self, NodeId peer, LinkKeys keys,
                       const sgx::Measurement& program)
    : self_(self),
      peer_(peer),
      keys_(std::move(keys)),
      aad_send_(direction_aad(self, peer, program)),
      aad_recv_(direction_aad(peer, self, program)),
      send_seq_(keys_.send_seq0),
      recv_next_(keys_.recv_seq0) {}

Bytes SecureLink::seal(ByteView plaintext) {
  std::uint8_t nonce[crypto::kAeadNonceSize] = {};
  store_le64(nonce, send_seq_++);
  ++sealed_count_;
  ChannelMetrics::get().sealed.inc();
  return crypto::aead_seal(keys_.send_key, ByteView(nonce, sizeof nonce),
                           aad_send_, plaintext);
}

std::optional<Bytes> SecureLink::open(ByteView blob) {
  if (blob.size() < crypto::kAeadOverhead) {
    ++rejected_count_;
    ChannelMetrics::get().mac_failed.inc();
    return std::nullopt;
  }
  // The wire sequence number rides in the nonce (authenticated by the AEAD).
  std::uint64_t seq = load_le64(blob.data());
  if (seq < recv_next_ || recv_seen_.contains(seq)) {
    LOG_DEBUG("channel: replayed seq ", seq, " rejected");
    ++rejected_count_;
    ++replay_count_;
    ChannelMetrics::get().replay_rejected.inc();
    return std::nullopt;  // replay
  }
  auto plaintext = crypto::aead_open(keys_.recv_key, aad_recv_, blob);
  if (!plaintext) {
    ++rejected_count_;
    ChannelMetrics::get().mac_failed.inc();
    return std::nullopt;
  }
  // Mark accepted; compact the window when the low end becomes contiguous.
  recv_seen_.insert(seq);
  while (recv_seen_.contains(recv_next_)) {
    recv_seen_.erase(recv_next_);
    ++recv_next_;
  }
  ++opened_count_;
  ChannelMetrics::get().opened.inc();
  return plaintext;
}

}  // namespace sgxp2p::channel
