#include "channel/secure_link.hpp"

#include "common/log.hpp"
#include "common/serde.hpp"
#include "crypto/aead.hpp"

namespace sgxp2p::channel {

namespace {
Bytes direction_aad(NodeId from, NodeId to, const sgx::Measurement& program) {
  BinaryWriter w;
  w.str("sgxp2p-msg-v1");
  w.u32(from);
  w.u32(to);
  w.raw(ByteView(program.data(), program.size()));
  return w.take();
}
}  // namespace

ChannelMetrics& ChannelMetrics::get() {
  thread_local ChannelMetrics metrics;
  thread_local std::uint64_t bound_registry_id = 0;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
  if (reg.id() != bound_registry_id) {
    metrics.sealed = &reg.counter("channel.sealed");
    metrics.opened = &reg.counter("channel.opened");
    metrics.replay_rejected = &reg.counter("channel.replay_rejected");
    metrics.mac_failed = &reg.counter("channel.mac_failed");
    metrics.window_overflow = &reg.counter("channel.window_overflow");
    bound_registry_id = reg.id();
  }
  return metrics;
}

SecureLink::SecureLink(NodeId self, NodeId peer, LinkKeys keys,
                       const sgx::Measurement& program)
    : self_(self),
      peer_(peer),
      keys_(std::move(keys)),
      send_aead_(ByteView(keys_.send_key)),
      recv_aead_(ByteView(keys_.recv_key)),
      aad_send_(direction_aad(self, peer, program)),
      aad_recv_(direction_aad(peer, self, program)),
      send_seq_(keys_.send_seq0),
      recv_base_(keys_.recv_seq0) {}

Bytes SecureLink::serialize() const {
  BinaryWriter w;
  w.str("sgxp2p-link-v2");
  w.u32(self_);
  w.u32(peer_);
  w.bytes(keys_.send_key);
  w.bytes(keys_.recv_key);
  w.u64(send_seq_);
  w.u64(recv_base_);
  for (std::uint64_t word : recv_window_) w.u64(word);
  return w.take();
}

std::optional<SecureLink> SecureLink::deserialize(
    ByteView data, const sgx::Measurement& program) {
  BinaryReader r(data);
  if (r.str() != "sgxp2p-link-v2") return std::nullopt;
  NodeId self = r.u32();
  NodeId peer = r.u32();
  LinkKeys keys;
  keys.send_key = r.bytes();
  keys.recv_key = r.bytes();
  // Seed the counters from the saved live values: the restored link resumes
  // mid-stream (no nonce reuse, replay window intact).
  keys.send_seq0 = r.u64();
  keys.recv_seq0 = r.u64();
  std::array<std::uint64_t, kReplayWindow / 64> window;
  for (std::uint64_t& word : window) word = r.u64();
  if (!r.done()) return std::nullopt;
  if (keys.send_key.size() != crypto::kAeadKeySize ||
      keys.recv_key.size() != crypto::kAeadKeySize) {
    return std::nullopt;
  }
  SecureLink link(self, peer, std::move(keys), program);
  link.recv_window_ = window;
  return link;
}

Bytes SecureLink::seal(ByteView plaintext) {
  std::uint8_t nonce[crypto::kAeadNonceSize] = {};
  store_le64(nonce, send_seq_++);
  ++sealed_count_;
  ChannelMetrics::get().sealed->inc();
  return crypto::aead_seal(send_aead_, ByteView(nonce, sizeof nonce),
                           aad_send_, plaintext);
}

std::optional<Bytes> SecureLink::open(ByteView blob) {
  ChannelMetrics& metrics = ChannelMetrics::get();
  if (blob.size() < crypto::kAeadOverhead) {
    ++rejected_count_;
    metrics.mac_failed->inc();
    return std::nullopt;
  }
  // The wire sequence number rides in the nonce (authenticated by the AEAD).
  std::uint64_t seq = load_le64(blob.data());
  if (seq < recv_base_ || window_bit(seq)) {
    LOG_DEBUG("channel: replayed seq ", seq, " rejected");
    ++rejected_count_;
    ++replay_count_;
    metrics.replay_rejected->inc();
    return std::nullopt;  // replay
  }
  if (seq - recv_base_ >= kReplayWindow) {
    LOG_DEBUG("channel: seq ", seq, " beyond replay window (base ", recv_base_,
              ") rejected");
    ++rejected_count_;
    ++window_overflow_count_;
    metrics.window_overflow->inc();
    return std::nullopt;  // cannot track without losing replay protection
  }
  auto plaintext = crypto::aead_open(recv_aead_, aad_recv_, blob);
  if (!plaintext) {
    ++rejected_count_;
    metrics.mac_failed->inc();
    return std::nullopt;
  }
  // Mark accepted; slide the base over the contiguous accepted prefix,
  // clearing bits so the slots are reusable when the window comes around.
  set_window_bit(seq);
  while (window_bit(recv_base_)) {
    clear_window_bit(recv_base_);
    ++recv_base_;
  }
  ++opened_count_;
  metrics.opened->inc();
  return plaintext;
}

}  // namespace sgxp2p::channel
