// FloodNode — broadcast by flooding over a sparse overlay (Appendix G, S5).
//
// The paper's connectivity assumption S5 (full mesh) "can be relaxed such
// that the network is a sparse but expander or random graph … the direct
// point-to-point broadcast in our protocol can be replaced with a flooding
// algorithm". This module demonstrates that substitution: a message floods
// a ring+chords overlay (apps::Overlay), each node relaying once to its
// neighbors in the round after first receipt. Coverage completes within
// graph-eccentricity rounds at O(Σ degree) messages per flood — versus the
// mesh's O(N) links per multicast — at the price of diameter extra rounds,
// which is exactly the trade the paper describes.
#pragma once

#include <optional>
#include <set>

#include "apps/random_walk.hpp"
#include "common/serde.hpp"
#include "protocol/plain_node.hpp"

namespace sgxp2p::protocol {

class FloodNode : public PlainNode {
 public:
  struct Result {
    bool received = false;
    std::uint32_t round = 0;  // round of first receipt (1 for the origin)
    std::uint32_t hops = 0;   // path length the copy we first saw travelled
  };

  FloodNode(NodeId self, std::uint32_t n, const apps::Overlay& overlay,
            bool is_origin, Bytes payload = {})
      : PlainNode(self, n, /*t=*/0),
        overlay_(&overlay),
        is_origin_(is_origin),
        payload_(std::move(payload)) {}

  [[nodiscard]] const Result& result() const { return result_; }

 protected:
  void round_begin(std::uint32_t rnd) override {
    if (rnd == 1 && is_origin_) {
      result_ = {true, 1, 0};
      relay_hops_ = 0;
      relay_pending_ = true;
    }
    if (relay_pending_) {
      relay_pending_ = false;
      BinaryWriter w;
      w.u32(relay_hops_ + 1);
      w.bytes(payload_);
      // Encode once, then fan the same wire bytes out to every neighbor.
      multicast_to(overlay_->neighbors(self_), w.take());
    }
  }

  void on_message(NodeId from, ByteView data) override {
    (void)from;
    BinaryReader r(data);
    std::uint32_t hops = r.u32();
    Bytes payload = r.bytes();
    if (!r.done()) return;
    if (result_.received) return;  // dedupe: relay only the first copy
    result_ = {true, round(), hops};
    payload_ = std::move(payload);
    relay_hops_ = hops;
    relay_pending_ = true;
  }

 private:
  const apps::Overlay* overlay_;
  bool is_origin_;
  Bytes payload_;
  bool relay_pending_ = false;
  std::uint32_t relay_hops_ = 0;
  Result result_;
};

}  // namespace sgxp2p::protocol
