// PeerEnclave — the protocol enclave runtime shared by ERB and ERNG.
//
// Owns the per-peer SecureLinks, the one-time setup (attested handshake +
// initial instance-sequence exchange), and the lockstep round driver (P5):
// rounds are computed from trusted time only, never from the host. Concrete
// protocols subclass and react to `on_round_begin` / `on_val`.
//
// Channel modes:
//   kAttested  — full fidelity: X25519 handshake bound into attestation
//                quotes, AEAD-sealed transport, replay windows. Used by all
//                tests and the byzantine benchmarks.
//   kAccounted — large-scale benchmark mode: payloads travel with the same
//                on-wire size (the AEAD overhead is padded in) but without
//                the cipher work, so O(N³) message counts stay simulable.
//                Security-irrelevant by construction (honest-only benches).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "channel/secure_link.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/wire.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"

namespace sgxp2p::protocol {

enum class ChannelMode { kAttested, kAccounted };

struct PeerConfig {
  NodeId self = kNoNode;
  std::uint32_t n = 0;          // network size (assumption S1)
  std::uint32_t t = 0;          // byzantine bound, t < N/2 (S4)
  SimDuration round_ms = 0;     // 2Δ (S3)
  ChannelMode mode = ChannelMode::kAttested;
};

/// Per-node per-type send counters (ERB/ERNG message classes), used by the
/// benches to report the paper's INIT/ECHO/ACK sizing remarks. The registry
/// carries the process-wide aggregate as `<ns>.send{TYPE}` counters; this
/// struct remains the per-enclave view (a registry label per node would mean
/// N×|types| instruments at benchmark scale).
struct SendStats {
  static constexpr std::size_t kTypeSlots = 16;
  std::uint64_t by_type[kTypeSlots] = {};
  std::uint64_t bytes = 0;
  void count(MsgType type, std::size_t sz) {
    auto slot = static_cast<std::size_t>(type);
    if (slot < kTypeSlots) ++by_type[slot];
    bytes += sz;
  }
  [[nodiscard]] std::uint64_t of(MsgType type) const {
    auto slot = static_cast<std::size_t>(type);
    return slot < kTypeSlots ? by_type[slot] : 0;
  }
};

class PeerEnclave : public sgx::Enclave {
 public:
  PeerEnclave(sgx::SgxPlatform& platform, sgx::CpuId cpu,
              const sgx::ProgramIdentity& program, sgx::EnclaveHostIface& host,
              PeerConfig config, const sgx::SimIAS& ias);

  // ----- setup phase (one-time, before protocol start) -----

  /// kAttested: this enclave's handshake message (quote over its ephemeral
  /// DH public key). One blob serves all peers.
  Bytes handshake_blob();
  /// kAttested: installs the link for the sender of `blob`; false when
  /// attestation fails (the peer is then not admitted — paper setup phase).
  bool accept_handshake(ByteView blob);
  /// kAccounted: installs a size-accounting link for `peer`.
  void install_fast_link(NodeId peer);

  /// Sealed SETUP value carrying this node's initial instance sequence
  /// number for `to` (P6 material).
  Bytes make_seq_blob(NodeId to);
  bool accept_seq_blob(NodeId from, ByteView blob);

  /// Marks setup complete and fixes the synchronous start time T0 (S2).
  void start_protocol(SimTime t0);

  // ----- runtime -----

  /// Trusted-timer callback at each round boundary.
  void on_tick();

  /// ECALL: inbound blob from the host.
  void deliver(NodeId from, ByteView blob) final;

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const PeerConfig& config() const { return cfg_; }
  [[nodiscard]] const SendStats& send_stats() const { return send_stats_; }

  /// Current round from trusted time: 1 + (now − T0) / 2Δ.
  [[nodiscard]] std::uint32_t current_round() const;

  /// This node's own initial instance sequence number.
  [[nodiscard]] std::uint64_t my_seq() const { return my_seq_; }
  /// The expected instance sequence number for `initiator` (from setup).
  [[nodiscard]] std::optional<std::uint64_t> expected_seq(
      NodeId initiator) const;
  /// Advances every initiator's expected sequence (end of a valid instance).
  void bump_all_seqs();

 protected:
  virtual void on_protocol_start() {}
  virtual void on_round_begin(std::uint32_t round) = 0;
  virtual void on_val(NodeId from, const Val& val) = 0;

  /// Seals and transfers a protocol value to `to`.
  void send_val(NodeId to, const Val& val);

  /// Seals and transfers one value to every node in `group` (self skipped).
  /// Behaviorally identical to calling send_val per peer in group order, but
  /// the value is serialized once into a reused scratch buffer and each link
  /// seals those same bytes — the O(N²) fan-outs pay one encode per value
  /// instead of one per (value, peer).
  void broadcast_val(const std::vector<NodeId>& group, const Val& val);

  /// P4: the node detected its own divergence (ACK shortfall) and leaves.
  void halt_self();

  /// Installs/overrides the expected instance sequence for a peer — used by
  /// the membership extension when a join record (id, seq₀) is admitted.
  void install_peer_seq(NodeId peer, std::uint64_t seq) {
    peer_seq_[peer] = seq;
  }

  /// All peer ids with an established link, ascending.
  [[nodiscard]] std::vector<NodeId> peers() const;

  // ----- checkpoint support (src/recovery/) -----

  /// Serializes P6-critical runtime state: the own instance sequence, the
  /// peer sequence table, and every SecureLink (session keys + replay
  /// windows). Contains key material — callers must pass the result through
  /// Enclave::seal before it reaches the host.
  [[nodiscard]] Bytes export_core_state() const;
  /// Restores export_core_state() output into a freshly launched enclave
  /// (same program, same CPU). Links are reinstated as-is; a subsequent
  /// re-attested handshake replaces them with fresh keys.
  bool import_core_state(ByteView data);

  // ----- observability (namespace = "erb", "erng", or "eba") -----

  /// Synchronous start time T0, for decision-latency instrumentation.
  [[nodiscard]] SimTime start_time() const { return start_time_; }
  /// The metric/trace namespace this enclave reports under.
  [[nodiscard]] const char* obs_ns() const { return obs_ns_; }
  /// Registry counter `<ns>.<name>{label}`; resolved once then cached by
  /// the registry, so fine to call on warm paths.
  obs::Counter& obs_counter(const char* name, const char* label = "");
  /// Trace event stamped with trusted time, self id, and the namespace.
  /// Returns the assigned span id (0 when tracing is off) so callers can
  /// scope follow-on work to this event via TraceRecorder::Scope.
  std::uint64_t obs_event(const char* event, obs::TraceField f0 = {},
                          obs::TraceField f1 = {}, obs::TraceField f2 = {},
                          obs::TraceField f3 = {});

 private:
  Bytes seal_for(NodeId to, ByteView plaintext);
  std::optional<Bytes> open_from(NodeId from, ByteView blob);
  /// Shared send accounting: SendStats, registry counters, trace event.
  void account_send(const Val& val, NodeId to, std::size_t wire_bytes);

  PeerConfig cfg_;
  const sgx::SimIAS* ias_;
  Bytes dh_private_;
  std::uint64_t my_seq_;
  std::unordered_map<NodeId, channel::SecureLink> links_;
  std::vector<NodeId> fast_peers_;  // kAccounted membership
  std::unordered_map<NodeId, std::uint64_t> peer_seq_;
  bool started_ = false;
  bool halted_ = false;
  SimTime start_time_ = 0;
  SendStats send_stats_;
  Bytes wire_scratch_;  // reused Val serialization buffer (send/broadcast)
  // Cached registry handles for the send hot path.
  const char* obs_ns_;
  obs::Counter* type_counters_[SendStats::kTypeSlots] = {};
  obs::Counter* send_bytes_ctr_ = nullptr;
  obs::Counter* rounds_ctr_ = nullptr;
};

}  // namespace sgxp2p::protocol
