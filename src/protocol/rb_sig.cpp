#include "protocol/rb_sig.hpp"

#include <algorithm>

#include "common/serde.hpp"

namespace sgxp2p::protocol {

RbSigNode::RbSigNode(NodeId self, std::uint32_t n, std::uint32_t t,
                     NodeId initiator, Bytes payload, ByteView signer_seed)
    : PlainNode(self, n, t),
      initiator_(initiator),
      payload_(std::move(payload)),
      // Height 3 → 8 one-time keys: at most 2 relays + equivocation tests.
      signer_(signer_seed, 3) {}

Bytes RbSigNode::transcript(const Bytes& value, const std::vector<NodeId>& ids,
                            std::size_t upto) {
  BinaryWriter w;
  w.str("rbsig-transcript");
  w.bytes(value);
  for (std::size_t i = 0; i < upto; ++i) w.u32(ids[i]);
  return w.take();
}

Bytes RbSigNode::encode(const SignedChain& chain) {
  BinaryWriter w;
  w.bytes(chain.value);
  w.u32(static_cast<std::uint32_t>(chain.ids.size()));
  for (std::size_t i = 0; i < chain.ids.size(); ++i) {
    w.u32(chain.ids[i]);
    w.bytes(chain.sigs[i]);
  }
  return w.take();
}

std::optional<RbSigNode::SignedChain> RbSigNode::decode(ByteView data) {
  BinaryReader r(data);
  SignedChain chain;
  chain.value = r.bytes();
  std::uint32_t count = r.u32();
  if (!r.ok() || count > 4096) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    chain.ids.push_back(r.u32());
    chain.sigs.push_back(r.bytes());
  }
  if (!r.done()) return std::nullopt;
  return chain;
}

bool RbSigNode::verify_chain(const SignedChain& chain,
                             std::uint32_t rnd) const {
  const std::size_t len = chain.ids.size();
  if (len == 0 || len > t_ + 1) return false;
  // Round-r validity: r distinct signatures, the first from the initiator,
  // none from us.
  if (len != rnd) return false;
  if (chain.ids.front() != initiator_) return false;
  std::set<NodeId> seen;
  for (std::size_t i = 0; i < len; ++i) {
    NodeId id = chain.ids[i];
    if (id >= n_ || id == self_ || !seen.insert(id).second) return false;
    Bytes tbs = transcript(chain.value, chain.ids, i + 1);
    if (!crypto::merkle_verify(public_keys_[id], tbs, chain.sigs[i])) {
      return false;
    }
  }
  return true;
}

void RbSigNode::round_begin(std::uint32_t rnd) {
  if (rnd == 1 && self_ == initiator_) {
    SignedChain chain;
    chain.value = payload_;
    chain.ids = {self_};
    chain.sigs = {signer_.sign(transcript(payload_, chain.ids, 1))};
    s_m_.insert(payload_);
    multicast(encode(chain));
  }

  for (const SignedChain& chain : relay_pending_) {
    multicast(encode(chain));
  }
  relay_pending_.clear();

  if (rnd > t_ + 1 && !result_.decided) {
    result_.decided = true;
    result_.round = rnd;
    if (s_m_.size() == 1) {
      result_.value = *s_m_.begin();
    } else {
      result_.value.reset();  // 0 or ≥2 values → ⊥
    }
  }
}

void RbSigNode::on_message(NodeId from, ByteView data) {
  (void)from;  // authenticity comes from the signature chain, not transport
  if (result_.decided) return;
  std::uint32_t rnd = round();
  if (rnd == 0 || rnd > t_ + 1) return;
  auto chain = decode(data);
  if (!chain || !verify_chain(*chain, rnd)) return;
  if (s_m_.contains(chain->value)) return;
  s_m_.insert(chain->value);
  // Relay newly seen values (at most two: two already prove equivocation),
  // appending our signature, if the chain can still grow within t+1.
  if (relayed_ < 2 && chain->ids.size() < t_ + 1) {
    ++relayed_;
    chain->ids.push_back(self_);
    chain->sigs.push_back(
        signer_.sign(transcript(chain->value, chain->ids, chain->ids.size())));
    relay_pending_.push_back(std::move(*chain));
  }
}

void EquivocatingRbSigInitiator::round_begin(std::uint32_t rnd) {
  if (rnd == 1) {
    // Send m0 to even peers, m1 to odd peers — both correctly signed.
    for (const Bytes& value : {payload_, m1_}) {
      SignedChain chain;
      chain.value = value;
      chain.ids = {self_};
      chain.sigs = {signer_.sign(transcript(value, chain.ids, 1))};
      Bytes wire = encode(chain);
      for (NodeId peer = 0; peer < n_; ++peer) {
        if (peer == self_) continue;
        bool even = (peer % 2 == 0);
        if ((value == payload_) == even) send(peer, wire);
      }
    }
    result_.decided = true;
    result_.value = payload_;
    result_.round = 1;
  }
}

}  // namespace sgxp2p::protocol
