#include "protocol/erng_basic.hpp"

#include <numeric>

#include "common/check.hpp"

namespace sgxp2p::protocol {

namespace {
constexpr std::size_t kRandSize = 32;  // k = 256 bits
}

ErngBasicNode::ErngBasicNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                             sgx::EnclaveHostIface& host, PeerConfig config,
                             const sgx::SimIAS& ias)
    : PeerEnclave(platform, cpu, ErngBasicNode::program(), host, config, ias) {}

void ErngBasicNode::on_protocol_start() {
  // mi ←$ {0,1}^k from trusted randomness — the host can neither see nor
  // re-roll it (P1/P3 close attack A1's "repeat until favorable" loop).
  own_value_ = read_rand().generate(kRandSize);
  ErbConfig cfg;
  cfg.self = config().self;
  cfg.instance = InstanceId{config().self, my_seq()};
  cfg.participants.resize(config().n);
  std::iota(cfg.participants.begin(), cfg.participants.end(), NodeId{0});
  cfg.t = config().t;
  cfg.start_round = 1;
  cfg.is_initiator = true;
  cfg.init_payload = own_value_;
  instances_.emplace(config().self, ErbInstance(std::move(cfg)));
}

ErbInstance& ErngBasicNode::instance_for(NodeId initiator) {
  auto it = instances_.find(initiator);
  if (it == instances_.end()) {
    ErbConfig cfg;
    cfg.self = config().self;
    cfg.instance = InstanceId{initiator, expected_seq(initiator).value_or(0)};
    cfg.participants.resize(config().n);
    std::iota(cfg.participants.begin(), cfg.participants.end(), NodeId{0});
    cfg.t = config().t;
    cfg.start_round = 1;
    cfg.is_initiator = false;
    it = instances_.emplace(initiator, ErbInstance(std::move(cfg))).first;
  }
  return it->second;
}

void ErngBasicNode::perform(const ErbInstance::Sends& sends) {
  // A deferred batch (the scheduled ECHO) is causally the child of last
  // round's delivery, not of the round tick that flushed it.
  obs::TraceRecorder::Scope causal(sends.cause);
  // Multicasts first — that is the order the old per-peer vector carried.
  for (const Val& v : sends.multicasts) broadcast_val(*sends.group, v);
  for (const auto& send : sends.unicasts) send_val(send.to, send.val);
}

void ErngBasicNode::finalize(std::uint32_t round) {
  if (result_.done) return;
  result_.done = true;
  result_.round = round;
  result_.decided_at = trusted_time();
  obs_counter("decides").inc();
  obs::MetricsRegistry::current()
      .histogram("erng.decide_latency_ms",
                 {1000, 2000, 4000, 8000, 16000, 60000, 300000, 1200000})
      .observe(result_.decided_at - start_time());
  Bytes acc(kRandSize, 0);
  std::size_t count = 0;
  for (const auto& [initiator, inst] : instances_) {
    if (inst.has_value() && inst.value().size() == kRandSize) {
      xor_into(acc, inst.value());
      ++count;
    }
  }
  result_.set_size = count;
  result_.is_bottom = (count == 0);
  result_.value = std::move(acc);
  obs_event("decide", obs::fnum("round", round),
            obs::fnum("set_size", static_cast<std::int64_t>(count)),
            obs::fnum("bottom", result_.is_bottom ? 1 : 0),
            obs::fnum("latency_ms", result_.decided_at - start_time()));
}

void ErngBasicNode::on_round_begin(std::uint32_t round) {
  for (auto& [initiator, inst] : instances_) {
    perform(inst.on_round_begin(round));
    if (inst.wants_halt()) {
      halt_self();
      return;
    }
  }
  // Hard deadline: all instances have decided by the end of round t + 2.
  if (round > config().t + 2) {
    finalize(round);
    return;
  }
  // Early output: every initiator's instance accepted a value.
  if (!result_.done && instances_.size() == config().n) {
    bool all_valued = true;
    for (const auto& [initiator, inst] : instances_) {
      if (!inst.has_value()) {
        all_valued = false;
        break;
      }
    }
    if (all_valued) finalize(round);
  }
}

void ErngBasicNode::on_val(NodeId from, const Val& val) {
  if (val.initiator >= config().n) return;
  if (val.type != MsgType::kInit && val.type != MsgType::kEcho &&
      val.type != MsgType::kAck) {
    return;
  }
  ErbInstance& inst = instance_for(val.initiator);
  perform(inst.on_val(from, val, current_round()));
  if (inst.wants_halt()) halt_self();
}

}  // namespace sgxp2p::protocol
