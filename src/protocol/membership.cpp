#include "protocol/membership.hpp"

#include <algorithm>

#include "common/serde.hpp"

namespace sgxp2p::protocol {

namespace {
Bytes encode_join_record(NodeId joiner, std::uint64_t seq0) {
  BinaryWriter w;
  w.u32(joiner);
  w.u64(seq0);
  return w.take();
}

std::optional<std::pair<NodeId, std::uint64_t>> decode_join_record(
    ByteView data) {
  BinaryReader r(data);
  NodeId joiner = r.u32();
  std::uint64_t seq0 = r.u64();
  if (!r.done()) return std::nullopt;
  return std::pair{joiner, seq0};
}

Bytes encode_roster(const std::vector<NodeId>& roster) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(roster.size()));
  for (NodeId id : roster) w.u32(id);
  return w.take();
}

std::optional<std::vector<NodeId>> decode_roster(ByteView data) {
  BinaryReader r(data);
  std::uint32_t n = r.u32();
  if (!r.ok() || n > 1 << 20) return std::nullopt;
  std::vector<NodeId> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.u32());
  if (!r.done()) return std::nullopt;
  return out;
}
}  // namespace

RosterNode::RosterNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                       sgx::EnclaveHostIface& host, PeerConfig config,
                       const sgx::SimIAS& ias,
                       std::vector<NodeId> initial_roster,
                       std::vector<JoinPlanEntry> plan)
    : PeerEnclave(platform, cpu, RosterNode::program(), host, config, ias),
      roster_(std::move(initial_roster)),
      plan_(std::move(plan)) {
  std::sort(roster_.begin(), roster_.end());
  is_member_ = in_roster(config.self);
}

bool RosterNode::in_roster(NodeId id) const {
  return std::binary_search(roster_.begin(), roster_.end(), id);
}

ErbInstance* RosterNode::join_instance(NodeId sponsor, std::size_t w) {
  if (instance_) return instance_.get();
  ErbConfig cfg;
  cfg.self = config().self;
  cfg.instance = InstanceId{sponsor, expected_seq(sponsor).value_or(0)};
  cfg.participants = roster_;
  cfg.t = roster_t();
  cfg.start_round = window_start(w) + 1;
  cfg.max_rounds = window() - 1;  // must settle inside the window
  cfg.is_initiator = false;
  instance_ = std::make_unique<ErbInstance>(std::move(cfg));
  return instance_.get();
}

void RosterNode::perform(const ErbInstance::Sends& sends) {
  for (const auto& send : sends) send_val(send.to, send.val);
}

void RosterNode::close_window(std::size_t w) {
  // Admission: members that accepted the (joiner, seq₀) record install it.
  if (instance_ && instance_->accepted() && instance_->has_value()) {
    auto record = decode_join_record(instance_->value());
    if (record && !in_roster(record->first)) {
      roster_.push_back(record->first);
      std::sort(roster_.begin(), roster_.end());
      admitted_.push_back(record->first);
      install_peer_seq(record->first, record->second);
      if (welcome_due_ && welcome_to_ == record->first) {
        Val welcome{MsgType::kWelcome, config().self, my_seq(), 0,
                    encode_roster(roster_)};
        send_val(welcome_to_, welcome);
      }
    }
  }
  instance_.reset();
  pending_join_.reset();
  welcome_due_ = false;
  welcome_to_ = kNoNode;
  current_window_ = w + 1;
  bump_all_seqs();
}

void RosterNode::on_round_begin(std::uint32_t round) {
  std::size_t w = window_of(round);
  // Close any window we have moved past.
  while (current_window_ < w) {
    if (instance_ && !instance_->accepted()) {
      (void)instance_->on_round_begin(round);  // force ⊥ if undecided
    }
    close_window(current_window_);
  }
  if (w >= plan_.size() && !instance_) {
    // No joins scheduled this window; idle.
  }

  std::uint32_t ws = window_start(w);
  const JoinPlanEntry* entry = w < plan_.size() ? &plan_[w] : nullptr;

  // Joiner: announce to the sponsor in the window's first round.
  if (entry != nullptr && round == ws && config().self == entry->joiner &&
      !is_member_) {
    Val join{MsgType::kJoin, config().self, my_seq(), round, {}};
    send_val(entry->sponsor, join);
  }

  // Sponsor: initiate the roster ERB one round after receiving the JOIN.
  if (entry != nullptr && round == ws + 1 && config().self == entry->sponsor &&
      is_member_ && pending_join_) {
    ErbConfig cfg;
    cfg.self = config().self;
    cfg.instance = InstanceId{config().self, my_seq()};
    cfg.participants = roster_;
    cfg.t = roster_t();
    cfg.start_round = ws + 1;
    cfg.max_rounds = window() - 1;
    cfg.is_initiator = true;
    cfg.init_payload =
        encode_join_record(pending_join_->first, pending_join_->second);
    instance_ = std::make_unique<ErbInstance>(std::move(cfg));
    welcome_due_ = true;
    welcome_to_ = pending_join_->first;
  }

  if (instance_) {
    perform(instance_->on_round_begin(round));
    if (instance_->wants_halt()) halt_self();
  }
}

void RosterNode::on_val(NodeId from, const Val& val) {
  std::uint32_t round = current_round();
  std::size_t w = window_of(round);
  const JoinPlanEntry* entry = w < plan_.size() ? &plan_[w] : nullptr;

  switch (val.type) {
    case MsgType::kJoin: {
      // Sponsor side: accept the joiner's announcement in round w·W+1.
      if (entry == nullptr || !is_member_) break;
      if (config().self != entry->sponsor || from != entry->joiner) break;
      if (val.round != round || round != window_start(w)) break;
      if (in_roster(from)) break;
      pending_join_ = {from, val.seq};
      break;
    }
    case MsgType::kInit:
    case MsgType::kEcho:
    case MsgType::kAck: {
      if (!is_member_ || entry == nullptr) break;
      if (!in_roster(from) || val.initiator != entry->sponsor) break;
      ErbInstance* inst = join_instance(entry->sponsor, w);
      perform(inst->on_val(from, val, round));
      if (inst->wants_halt()) halt_self();
      break;
    }
    case MsgType::kWelcome: {
      // Joiner side: adopt the sponsor's roster and become a member. The
      // WELCOME lands at the first tick of the window AFTER the join, so
      // match it against our own plan entry rather than the current one.
      if (is_member_) break;
      auto mine = std::find_if(
          plan_.begin(), plan_.end(),
          [&](const JoinPlanEntry& e) { return e.joiner == config().self; });
      if (mine == plan_.end() || from != mine->sponsor) break;
      auto roster = decode_roster(val.payload);
      if (!roster || roster->empty()) break;
      roster_ = std::move(*roster);
      std::sort(roster_.begin(), roster_.end());
      if (in_roster(config().self)) is_member_ = true;
      break;
    }
    default:
      break;
  }
}

}  // namespace sgxp2p::protocol
