#include "protocol/membership.hpp"

#include <algorithm>

#include "common/serde.hpp"

namespace sgxp2p::protocol {

namespace {
struct JoinRecord {
  NodeId joiner = kNoNode;
  std::uint64_t seq0 = 0;
  bool rejoin = false;
};

Bytes encode_join_record(NodeId joiner, std::uint64_t seq0, bool rejoin) {
  BinaryWriter w;
  w.u32(joiner);
  w.u64(seq0);
  w.u8(rejoin ? 1 : 0);
  return w.take();
}

std::optional<JoinRecord> decode_join_record(ByteView data) {
  BinaryReader r(data);
  JoinRecord rec;
  rec.joiner = r.u32();
  rec.seq0 = r.u64();
  rec.rejoin = r.u8() != 0;
  if (!r.done()) return std::nullopt;
  return rec;
}

struct WelcomePayload {
  std::vector<NodeId> roster;
  std::vector<std::pair<NodeId, std::uint64_t>> seqs;
};

/// WELCOME carries the roster and the sponsor's post-window sequence table,
/// so a (re)joiner with no prior P6 state converges to the members' view.
Bytes encode_welcome(const WelcomePayload& wp) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(wp.roster.size()));
  for (NodeId id : wp.roster) w.u32(id);
  w.u32(static_cast<std::uint32_t>(wp.seqs.size()));
  for (const auto& [id, seq] : wp.seqs) {
    w.u32(id);
    w.u64(seq);
  }
  return w.take();
}

std::optional<WelcomePayload> decode_welcome(ByteView data) {
  BinaryReader r(data);
  WelcomePayload wp;
  std::uint32_t n = r.u32();
  if (!r.ok() || n > 1 << 20) return std::nullopt;
  wp.roster.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) wp.roster.push_back(r.u32());
  std::uint32_t n_seqs = r.u32();
  if (!r.ok() || n_seqs > 1 << 20) return std::nullopt;
  wp.seqs.reserve(n_seqs);
  for (std::uint32_t i = 0; i < n_seqs; ++i) {
    NodeId id = r.u32();
    wp.seqs.emplace_back(id, r.u64());
  }
  if (!r.done()) return std::nullopt;
  return wp;
}
}  // namespace

RosterNode::RosterNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                       sgx::EnclaveHostIface& host, PeerConfig config,
                       const sgx::SimIAS& ias,
                       std::vector<NodeId> initial_roster,
                       std::vector<JoinPlanEntry> plan)
    : PeerEnclave(platform, cpu, RosterNode::program(), host, config, ias),
      roster_(std::move(initial_roster)),
      plan_(std::move(plan)) {
  std::sort(roster_.begin(), roster_.end());
  is_member_ = in_roster(config.self);
}

bool RosterNode::in_roster(NodeId id) const {
  return std::binary_search(roster_.begin(), roster_.end(), id);
}

ErbInstance* RosterNode::join_instance(NodeId sponsor, std::size_t w) {
  if (instance_) return instance_.get();
  ErbConfig cfg;
  cfg.self = config().self;
  cfg.instance = InstanceId{sponsor, expected_seq(sponsor).value_or(0)};
  cfg.participants = roster_;
  cfg.t = roster_t();
  cfg.start_round = window_start(w) + 1;
  cfg.max_rounds = window() - 1;  // must settle inside the window
  cfg.is_initiator = false;
  instance_ = std::make_unique<ErbInstance>(std::move(cfg));
  return instance_.get();
}

void RosterNode::perform(const ErbInstance::Sends& sends) {
  // A deferred batch (the scheduled ECHO) is causally the child of last
  // round's delivery, not of the round tick that flushed it.
  obs::TraceRecorder::Scope causal(sends.cause);
  // Multicasts first — that is the order the old per-peer vector carried.
  for (const Val& v : sends.multicasts) broadcast_val(*sends.group, v);
  for (const auto& send : sends.unicasts) send_val(send.to, send.val);
}

void RosterNode::close_window(std::size_t w) {
  // Admission: members that accepted the (joiner, seq₀) record install it.
  // For a rejoin the joiner is already in the roster, so only its sequence
  // entry is refreshed; a fresh join grows the roster too.
  NodeId welcome_target = kNoNode;
  if (instance_ && instance_->accepted() && instance_->has_value()) {
    auto record = decode_join_record(instance_->value());
    if (record && record->rejoin == in_roster(record->joiner)) {
      if (!record->rejoin) {
        roster_.push_back(record->joiner);
        std::sort(roster_.begin(), roster_.end());
        admitted_.push_back(record->joiner);
      }
      // A restored rejoiner decides its own record; its my_seq is tracked
      // separately, so only install entries for OTHER nodes.
      if (record->joiner != config().self) {
        install_peer_seq(record->joiner, record->seq0);
      }
      if (welcome_due_ && welcome_to_ == record->joiner) {
        welcome_target = welcome_to_;
      }
    }
  }
  instance_.reset();
  pending_join_.reset();
  welcome_due_ = false;
  welcome_to_ = kNoNode;
  current_window_ = w + 1;
  bump_all_seqs();
  // WELCOME goes out after the bump so the carried sequence table matches
  // what every member holds at the start of the next window.
  if (welcome_target != kNoNode && welcome_target != config().self) {
    WelcomePayload wp;
    wp.roster = roster_;
    for (NodeId id : roster_) {
      wp.seqs.emplace_back(
          id, id == config().self ? my_seq() : expected_seq(id).value_or(0));
    }
    Val welcome{MsgType::kWelcome, config().self, my_seq(), 0,
                encode_welcome(wp)};
    send_val(welcome_target, welcome);
  }
}

void RosterNode::on_round_begin(std::uint32_t round) {
  std::size_t w = window_of(round);
  // Close any window we have moved past.
  while (current_window_ < w) {
    if (instance_ && !instance_->accepted()) {
      (void)instance_->on_round_begin(round);  // force ⊥ if undecided
    }
    close_window(current_window_);
  }
  if (w >= plan_.size() && !instance_) {
    // No joins scheduled this window; idle.
  }

  std::uint32_t ws = window_start(w);
  const JoinPlanEntry* entry = w < plan_.size() ? &plan_[w] : nullptr;

  // (Re)joiner: announce to the sponsor in the window's first round. A
  // fresh join announces while not yet a member; a rejoin announces while
  // re-admission is pending (set by the recovery layer at relaunch) and
  // keeps retrying across consecutive plan entries until a WELCOME lands.
  if (entry != nullptr && round == ws && config().self == entry->joiner &&
      (entry->rejoin ? rejoin_pending_ : !is_member_)) {
    Val join{entry->rejoin ? MsgType::kRejoin : MsgType::kJoin, config().self,
             my_seq(), round, {}};
    send_val(entry->sponsor, join);
  }

  // Sponsor: initiate the roster ERB one round after receiving the JOIN.
  if (entry != nullptr && round == ws + 1 && config().self == entry->sponsor &&
      is_member_ && pending_join_) {
    ErbConfig cfg;
    cfg.self = config().self;
    cfg.instance = InstanceId{config().self, my_seq()};
    cfg.participants = roster_;
    cfg.t = roster_t();
    cfg.start_round = ws + 1;
    cfg.max_rounds = window() - 1;
    cfg.is_initiator = true;
    cfg.init_payload = encode_join_record(
        pending_join_->first, pending_join_->second, entry->rejoin);
    instance_ = std::make_unique<ErbInstance>(std::move(cfg));
    welcome_due_ = true;
    welcome_to_ = pending_join_->first;
  }

  if (instance_) {
    perform(instance_->on_round_begin(round));
    if (instance_->wants_halt()) halt_self();
  }
}

void RosterNode::on_val(NodeId from, const Val& val) {
  std::uint32_t round = current_round();
  std::size_t w = window_of(round);
  const JoinPlanEntry* entry = w < plan_.size() ? &plan_[w] : nullptr;

  switch (val.type) {
    case MsgType::kJoin:
    case MsgType::kRejoin: {
      // Sponsor side: accept the (re)joiner's announcement in round w·W+1.
      // A JOIN must come from outside the roster, a REJOIN from inside it.
      bool rejoin = val.type == MsgType::kRejoin;
      if (entry == nullptr || !is_member_ || entry->rejoin != rejoin) break;
      if (config().self != entry->sponsor || from != entry->joiner) break;
      if (val.round != round || round != window_start(w)) break;
      if (in_roster(from) != rejoin) break;
      pending_join_ = {from, val.seq};
      break;
    }
    case MsgType::kInit:
    case MsgType::kEcho:
    case MsgType::kAck: {
      if (!is_member_ || entry == nullptr) break;
      if (!in_roster(from) || val.initiator != entry->sponsor) break;
      ErbInstance* inst = join_instance(entry->sponsor, w);
      perform(inst->on_val(from, val, round));
      if (inst->wants_halt()) halt_self();
      break;
    }
    case MsgType::kWelcome: {
      // (Re)joiner side: adopt the sponsor's roster + sequence table and
      // become a member. The WELCOME lands at the first tick of the window
      // AFTER the join, so match it against our own plan entries rather
      // than the current one — any of our scheduled sponsors may answer
      // (retry across sponsors).
      if (is_member_ && !rejoin_pending_) break;
      bool from_my_sponsor = std::any_of(
          plan_.begin(), plan_.end(), [&](const JoinPlanEntry& e) {
            return e.joiner == config().self && e.sponsor == from;
          });
      if (!from_my_sponsor) break;
      auto welcome = decode_welcome(val.payload);
      if (!welcome || welcome->roster.empty()) break;
      roster_ = std::move(welcome->roster);
      std::sort(roster_.begin(), roster_.end());
      for (const auto& [id, seq] : welcome->seqs) {
        if (id != config().self) install_peer_seq(id, seq);
      }
      if (in_roster(config().self)) is_member_ = true;
      rejoin_pending_ = false;
      break;
    }
    default:
      break;
  }
}

Bytes RosterNode::export_membership_state() const {
  BinaryWriter w;
  w.str("sgxp2p-roster-v1");
  w.u32(static_cast<std::uint32_t>(roster_.size()));
  for (NodeId id : roster_) w.u32(id);
  w.u8(is_member_ ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(admitted_.size()));
  for (NodeId id : admitted_) w.u32(id);
  w.u64(current_window_);
  return w.take();
}

bool RosterNode::import_membership_state(ByteView data) {
  BinaryReader r(data);
  if (r.str() != "sgxp2p-roster-v1") return false;
  std::uint32_t n_roster = r.u32();
  if (!r.ok() || n_roster > 1 << 20) return false;
  std::vector<NodeId> roster;
  roster.reserve(n_roster);
  for (std::uint32_t i = 0; i < n_roster; ++i) roster.push_back(r.u32());
  bool is_member = r.u8() != 0;
  std::uint32_t n_admitted = r.u32();
  if (!r.ok() || n_admitted > 1 << 20) return false;
  std::vector<NodeId> admitted;
  admitted.reserve(n_admitted);
  for (std::uint32_t i = 0; i < n_admitted; ++i) admitted.push_back(r.u32());
  std::uint64_t window = r.u64();
  if (!r.done()) return false;
  roster_ = std::move(roster);
  std::sort(roster_.begin(), roster_.end());
  is_member_ = is_member;
  admitted_ = std::move(admitted);
  current_window_ = static_cast<std::size_t>(window);
  return true;
}

void RosterNode::reset_to_fresh_joiner() {
  // The checkpoint was lost or rejected: nothing beyond the public initial
  // roster can be trusted, so re-enter through the join machinery like a
  // newcomer. The roster keeps its constructor-time (public) value.
  is_member_ = false;
  rejoin_pending_ = true;
  instance_.reset();
  pending_join_.reset();
  welcome_due_ = false;
  welcome_to_ = kNoNode;
}

}  // namespace sgxp2p::protocol
