// EbaNode — Enclaved Byzantine Agreement, built on ERB.
//
// The paper notes (Table 1, footnote 2) that reliable broadcast and
// byzantine agreement interconvert with O(N) extra messages; this is that
// construction in the SGX-reduced model: every node ERB-broadcasts its input
// at round 1; after the instances settle, each node holds the SAME vector of
// N delivered values (⊥ for initiators whose broadcast failed) and decides
// the majority value, ties broken toward the lexicographically smallest.
//
//   Agreement   — the decision is a deterministic function of a common
//                 vector (ERB agreement), so all honest nodes match.
//   Validity    — if all honest nodes input v, then ≥ N − t = t + 1 slots
//                 hold v while byzantine inputs fill ≤ t, so v wins.
//   Termination — every instance decides by round t + 2.
#pragma once

#include <map>
#include <optional>

#include "protocol/erb_instance.hpp"
#include "protocol/peer_enclave.hpp"

namespace sgxp2p::protocol {

class EbaNode final : public PeerEnclave {
 public:
  struct Result {
    bool done = false;
    std::optional<Bytes> decision;  // nullopt = no value had support (all ⊥)
    std::size_t support = 0;        // slots holding the decided value
    std::size_t delivered = 0;      // non-⊥ slots
    std::uint32_t round = 0;
    SimTime decided_at = 0;
  };

  EbaNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
          sgx::EnclaveHostIface& host, PeerConfig config,
          const sgx::SimIAS& ias, Bytes input);

  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] static sgx::ProgramIdentity program() {
    return {"eba", "1.0"};
  }

 protected:
  void on_protocol_start() override;
  void on_round_begin(std::uint32_t round) override;
  void on_val(NodeId from, const Val& val) override;

 private:
  ErbInstance& instance_for(NodeId initiator);
  void perform(const ErbInstance::Sends& sends);
  void finalize(std::uint32_t round);

  Bytes input_;
  std::map<NodeId, ErbInstance> instances_;
  Result result_;
};

}  // namespace sgxp2p::protocol
