// ErbSequenceNode — back-to-back ERB executions on one session.
//
// A deployment does not tear the network down after every broadcast: the
// paper's setup phase runs once and sequence numbers advance per valid
// instance ("After every valid instance of the protocol, nodes will
// increase all sequence numbers by 1"). This node schedules K consecutive
// ERB executions, each occupying a window of t + 2 global rounds, bumping
// every expected sequence at each window boundary — which is exactly what
// makes ciphertext replays from execution e dead on arrival in execution
// e+1 (P6 across instances, not just within one).
#pragma once

#include <memory>
#include <vector>

#include "protocol/erb_instance.hpp"
#include "protocol/peer_enclave.hpp"

namespace sgxp2p::protocol {

class ErbSequenceNode final : public PeerEnclave {
 public:
  struct ExecutionResult {
    bool decided = false;
    std::optional<Bytes> value;
    std::uint32_t round = 0;  // instance-relative decision round
  };

  /// `payloads[e]` is the message the initiator broadcasts in execution e;
  /// K = payloads.size() executions are run.
  ErbSequenceNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                  sgx::EnclaveHostIface& host, PeerConfig config,
                  const sgx::SimIAS& ias, NodeId initiator,
                  std::vector<Bytes> payloads);

  [[nodiscard]] const std::vector<ExecutionResult>& results() const {
    return results_;
  }
  [[nodiscard]] bool all_done() const {
    return results_.size() == executions_ && (results_.empty() ||
                                              results_.back().decided);
  }
  /// Rounds per execution window (t + 2).
  [[nodiscard]] std::uint32_t window() const { return config().t + 2; }
  [[nodiscard]] static sgx::ProgramIdentity program() {
    return {"erb-seq", "1.0"};
  }

 protected:
  void on_round_begin(std::uint32_t round) override;
  void on_val(NodeId from, const Val& val) override;

 private:
  void open_execution(std::size_t e);
  void close_execution(std::uint32_t round);
  void perform(const ErbInstance::Sends& sends);

  NodeId initiator_;
  std::vector<Bytes> payloads_;
  std::size_t executions_;
  std::size_t current_exec_ = 0;
  bool exec_open_ = false;
  std::unique_ptr<ErbInstance> instance_;
  std::vector<ExecutionResult> results_;
};

}  // namespace sgxp2p::protocol
