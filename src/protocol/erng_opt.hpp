// ErngOptNode — optimized Enclaved Random Number Generation
// (Section 5.2 / Algorithm 6, Appendix F).
//
// Requires t ≤ N/3. Protocol phases (global rounds):
//   1           cluster selection: each node draws from {0,…,N/2γ−1} with
//               trusted randomness; a 0 makes it a cluster member, announced
//               with CHOSEN to everyone. E[cluster] = 2γ.
//   2           second-phase sampling: members draw from {0,…,γ′−1} with
//               γ′ = √γ; zeros initiate an ERB instance *within* the
//               cluster (participants = S_chosen). E[initiators] = O(√γ).
//   2…T_c+3     the cluster ERB instances run, T_c = t_c+2 instance rounds
//               where t_c = ⌊(|S_chosen|−1)/2⌋.
//   T_c+4       members multicast FINAL{M_i} (their common accepted set) to
//               all of P; a node outputs XOR(M) once it sees ⌊n_c/2⌋+1
//               identical sets from distinct members. Total rounds γ+Θ(1),
//               traffic O(N·γ + γ^{5/2}) with γ = Θ(log N).
//
// Small-N fallback (paper §6.2): when N < 4γ the sampling probability 2γ/N
// is degenerate, so the cluster is fixed to the first ⌈2N/3⌉ nodes — the
// configuration the paper used for its Fig. 3b measurements.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "protocol/erb_instance.hpp"
#include "protocol/peer_enclave.hpp"

namespace sgxp2p::protocol {

struct ErngOptParams {
  /// Statistical parameter γ; 0 → max(4, ⌈log2 N⌉).
  std::uint32_t gamma = 0;
  /// Force the deterministic 2N/3 fallback cluster even when N is large.
  bool force_fallback = false;
  /// Ablation (DESIGN.md §4.3): skip the second sampling phase so EVERY
  /// cluster member initiates an ERB — O(γ³) instead of O(γ^{5/2}).
  bool one_phase = false;
};

class ErngOptNode final : public PeerEnclave {
 public:
  struct Result {
    bool done = false;
    bool is_bottom = false;
    Bytes value;               // XOR of S_final
    std::size_t set_size = 0;  // |S_final|
    std::uint32_t round = 0;
    SimTime decided_at = 0;
    bool chosen = false;           // was this node a cluster member?
    bool second_phase = false;     // did it initiate a cluster ERB?
    std::size_t cluster_size = 0;  // |S_chosen| as this node saw it
  };

  ErngOptNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
              sgx::EnclaveHostIface& host, PeerConfig config,
              const sgx::SimIAS& ias, ErngOptParams params = {});

  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] std::uint32_t gamma() const { return gamma_; }
  /// Global round at which FINAL sets fly (known after round 1).
  [[nodiscard]] std::uint32_t final_round() const { return final_round_; }
  [[nodiscard]] static sgx::ProgramIdentity program() {
    return {"erng-opt", "1.0"};
  }

 protected:
  void on_protocol_start() override;
  void on_round_begin(std::uint32_t round) override;
  void on_val(NodeId from, const Val& val) override;

 private:
  [[nodiscard]] bool in_cluster(NodeId id) const {
    return s_chosen_.contains(id);
  }
  ErbInstance* instance_for(NodeId initiator);
  void perform(const ErbInstance::Sends& sends);
  void fix_cluster_parameters();
  void send_final(std::uint32_t round);
  void try_output(std::uint32_t round);
  void record_decide();

  ErngOptParams params_;
  std::uint32_t gamma_ = 0;
  bool fallback_ = false;

  bool chosen_ = false;
  std::set<NodeId> s_chosen_;
  std::vector<NodeId> cluster_;          // sorted snapshot after round 1
  std::uint32_t cluster_t_ = 0;          // t_c
  std::uint32_t cluster_max_rounds_ = 0; // t_c + 2
  std::uint32_t final_round_ = 0;        // global FINAL round
  std::uint32_t accept_threshold_ = 0;   // ⌊n_c/2⌋ + 1 identical sets

  std::map<NodeId, ErbInstance> instances_;  // cluster ERBs, by initiator
  bool final_sent_ = false;
  // Votes: serialized candidate set → distinct senders backing it.
  std::map<Bytes, std::set<NodeId>> final_votes_;
  Result result_;
};

}  // namespace sgxp2p::protocol
