// ErbNode — a peer running one Enclaved Reliable Broadcast (Section 4).
//
// Wraps a single ErbInstance in the PeerEnclave runtime: the designated
// initiator multicasts its message at round 1; every node reaches a decision
// (m or ⊥) by instance round min{f+2, t+2}. A node whose instance trips the
// halt-on-divergence check churns itself out (halted()).
#pragma once

#include <memory>
#include <optional>

#include "protocol/erb_instance.hpp"
#include "protocol/peer_enclave.hpp"

namespace sgxp2p::protocol {

class ErbNode final : public PeerEnclave {
 public:
  struct Result {
    bool decided = false;
    std::optional<Bytes> value;    // nullopt = ⊥
    std::uint32_t round = 0;       // instance round of the decision
    SimTime decided_at = 0;        // virtual time of the decision
  };

  /// `initiator` designates the broadcasting node; when self == initiator,
  /// `payload` is the message m to broadcast.
  ErbNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
          sgx::EnclaveHostIface& host, PeerConfig config,
          const sgx::SimIAS& ias, NodeId initiator, Bytes payload = {},
          bool enable_halt = true);

  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] static sgx::ProgramIdentity program() {
    return {"erb", "1.0"};
  }

 protected:
  void on_protocol_start() override;
  void on_round_begin(std::uint32_t round) override;
  void on_val(NodeId from, const Val& val) override;

 private:
  void perform(const ErbInstance::Sends& sends);
  void refresh_status();

  NodeId initiator_;
  Bytes payload_;
  bool enable_halt_;
  std::unique_ptr<ErbInstance> instance_;
  Result result_;
};

}  // namespace sgxp2p::protocol
