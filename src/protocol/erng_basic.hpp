// ErngBasicNode — unoptimized Enclaved Random Number Generation
// (Algorithm 3).
//
// Every node initiates one ERB instance at round 1 carrying a fresh random
// number from the enclave's trusted randomness (F2); all N instances run
// concurrently; after instance round t+2 every honest node holds the same
// final set S_final and outputs the XOR of its values.
//
// Early output: when all N instances have accepted non-⊥ values, the set
// can no longer grow at any honest node (every accepted value is already
// common by ERB agreement), so the output is available immediately — this
// matches the near-constant honest-case termination the paper measures in
// Fig. 2b. The node keeps participating (ACKs, scheduled ECHOs) until round
// t+2 so that slower nodes still converge.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "protocol/erb_instance.hpp"
#include "protocol/peer_enclave.hpp"

namespace sgxp2p::protocol {

class ErngBasicNode final : public PeerEnclave {
 public:
  struct Result {
    bool done = false;
    bool is_bottom = false;       // no instance delivered a value
    Bytes value;                  // XOR of S_final (32 bytes)
    std::size_t set_size = 0;     // |S_final|
    std::uint32_t round = 0;      // global round at which output was fixed
    SimTime decided_at = 0;
  };

  ErngBasicNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                sgx::EnclaveHostIface& host, PeerConfig config,
                const sgx::SimIAS& ias);

  [[nodiscard]] const Result& result() const { return result_; }
  /// This node's own contributed random number (for bias tests).
  [[nodiscard]] const Bytes& own_contribution() const { return own_value_; }
  [[nodiscard]] static sgx::ProgramIdentity program() {
    return {"erng-basic", "1.0"};
  }

 protected:
  void on_protocol_start() override;
  void on_round_begin(std::uint32_t round) override;
  void on_val(NodeId from, const Val& val) override;

 private:
  ErbInstance& instance_for(NodeId initiator);
  void perform(const ErbInstance::Sends& sends);
  void finalize(std::uint32_t round);

  std::map<NodeId, ErbInstance> instances_;  // ordered for determinism
  Bytes own_value_;
  Result result_;
};

}  // namespace sgxp2p::protocol
