// PlainNode — baseline protocol nodes WITHOUT SGX.
//
// The baselines the paper compares against (strawman Algorithm 1, the
// signature-chain broadcast RBsig of Algorithm 4, the early-stopping
// omission-model broadcast RBearly of Algorithm 5) run on ordinary nodes: no
// enclave, no blinded channel, payloads in the clear. Byzantine behavior is
// expressed by subclassing — a byzantine baseline node can forge and
// equivocate freely, which is exactly the gap the SGX reduction closes.
//
// PlainBed is the matching harness (simulator + network + lockstep loop).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"

namespace sgxp2p::protocol {

class PlainNode {
 public:
  PlainNode(NodeId self, std::uint32_t n, std::uint32_t t)
      : self_(self), n_(n), t_(t) {}
  virtual ~PlainNode() = default;

  void bind(sim::Network& network, SimDuration round_ms) {
    network_ = &network;
    round_ms_ = round_ms;
    // View sink: on_message only reads, so the network keeps (and recycles)
    // the buffer, and multicasts share one payload across the group.
    network.attach_view(self_, [this](NodeId from, ByteView blob) {
      if (!stopped_) on_message(from, blob);
    });
  }
  void start(SimTime t0) {
    t0_ = t0;
    started_ = true;
  }
  void on_tick() {
    if (started_ && !stopped_) round_begin(round());
  }
  /// Crash/omission-fault injection: when set, outbound messages to peers
  /// failing the filter are silently dropped (the general-omission model).
  void set_send_filter(std::function<bool(NodeId to)> filter) {
    send_filter_ = std::move(filter);
  }
  void stop() { stopped_ = true; }

  [[nodiscard]] NodeId id() const { return self_; }

 protected:
  virtual void round_begin(std::uint32_t rnd) = 0;
  virtual void on_message(NodeId from, ByteView data) = 0;

  [[nodiscard]] std::uint32_t round() const {
    if (!started_ || network_ == nullptr) return 0;
    SimTime now = network_->simulator().now();
    if (now < t0_) return 0;
    return static_cast<std::uint32_t>((now - t0_) / round_ms_) + 1;
  }
  void send(NodeId to, Bytes data) {
    if (send_filter_ && !send_filter_(to)) return;
    network_->send(self_, to, std::move(data));
  }
  void multicast(Bytes data) {
    std::vector<NodeId> group;
    group.reserve(n_ > 0 ? n_ - 1 : 0);
    for (NodeId peer = 0; peer < n_; ++peer) {
      if (peer != self_ && (!send_filter_ || send_filter_(peer))) {
        group.push_back(peer);
      }
    }
    network_->multicast(self_, group, std::move(data));
  }
  /// Sends the same already-encoded wire bytes to every id in `group`
  /// (self skipped): one encode, one shared buffer, |group| deliveries.
  void multicast_to(const std::vector<NodeId>& group, Bytes data) {
    std::vector<NodeId> filtered;
    filtered.reserve(group.size());
    for (NodeId peer : group) {
      if (peer != self_ && (!send_filter_ || send_filter_(peer))) {
        filtered.push_back(peer);
      }
    }
    network_->multicast(self_, filtered, std::move(data));
  }

  NodeId self_;
  std::uint32_t n_;
  std::uint32_t t_;

 private:
  sim::Network* network_ = nullptr;
  SimDuration round_ms_ = 0;
  SimTime t0_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::function<bool(NodeId)> send_filter_;
};

}  // namespace sgxp2p::protocol

namespace sgxp2p::sim {

/// Harness for PlainNode protocols (mirrors Testbed's round loop).
class PlainBed {
 public:
  PlainBed(std::uint32_t n, NetworkConfig net_cfg, SimDuration round_ms = 0,
           SimEngine engine = SimEngine::kDefault)
      : n_(n),
        simulator_(obs::MetricsRegistry::current(), engine),
        network_(simulator_, net_cfg),
        round_ms_(round_ms != 0 ? round_ms : 2 * net_cfg.worst_delay()) {}

  using NodeFactory =
      std::function<std::unique_ptr<protocol::PlainNode>(NodeId id)>;

  void build(const NodeFactory& make_node) {
    nodes_.reserve(n_);
    for (NodeId id = 0; id < n_; ++id) {
      auto node = make_node(id);
      node->bind(network_, round_ms_);
      nodes_.push_back(std::move(node));
    }
  }

  void start() {
    t0_ = simulator_.now() + milliseconds(10);
    for (auto& node : nodes_) node->start(t0_);
  }

  std::uint32_t run_rounds(std::uint32_t max_rounds,
                           const std::function<bool()>& stop_when = {}) {
    for (std::uint32_t r = 1; r <= max_rounds; ++r) {
      SimTime boundary = t0_ + static_cast<SimTime>(r - 1) * round_ms_;
      simulator_.run_until(boundary);
      for (auto& node : nodes_) node->on_tick();
      simulator_.run_until(boundary + round_ms_ - 1);
      if (stop_when && stop_when()) return r;
    }
    return max_rounds;
  }

  template <typename T>
  [[nodiscard]] T& node_as(NodeId id) {
    return *static_cast<T*>(nodes_.at(id).get());
  }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] Simulator& simulator() { return simulator_; }
  [[nodiscard]] SimDuration round_ms() const { return round_ms_; }

 private:
  std::uint32_t n_;
  Simulator simulator_;
  Network network_;
  SimDuration round_ms_;
  SimTime t0_ = 0;
  std::vector<std::unique_ptr<protocol::PlainNode>> nodes_;
};

}  // namespace sgxp2p::sim
