// Network sanitization analysis (Appendix D).
//
// Models the byzantine population across repeated ERB instances: in each
// instance every surviving byzantine node misbehaves independently with
// probability p, is then eliminated by halt-on-divergence (P4), and is
// replaced by a fresh join that is byzantine with probability 1/2 — the
// F_{i+1} = F_i − R_i + A_i process of Theorem D.1. The bench compares the
// Monte-Carlo survival curve Pr[F_r ≥ 1] with the paper's bound
// t·(1 − p/2)^r ≤ e^{−(rp/2 − ln t)}, and the per-instance round cost with
// Theorem D.2's convergence to the constant 2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace sgxp2p::protocol {

struct SanitizeConfig {
  std::uint32_t n = 1024;          // network size
  std::uint32_t t0 = 511;          // initial byzantine population
  double p = 1.0 / 32;             // per-instance misbehavior probability
  double rejoin_byzantine = 0.5;   // replacement is byzantine w.p. 1/2
  std::uint32_t instances = 4000;  // horizon r
  std::uint32_t trials = 200;      // Monte-Carlo repetitions
  std::uint64_t seed = 1;
};

struct SanitizeCurves {
  // Index r−1 → estimate after r instances.
  std::vector<double> pr_byz_remaining;  // Monte-Carlo Pr[F_r ≥ 1]
  std::vector<double> pr_bound;          // Theorem D.1 bound t(1 − p/2)^r
  std::vector<double> mean_byzantine;    // E[F_r] estimate
  std::vector<double> mean_rounds;       // avg instance round cost up to r
};

/// Runs the replacement process. Instance round cost model (Theorem D.2):
/// 2 rounds when no byzantine node misbehaves in that instance, else
/// f + 2 where f is the number misbehaving (each of which is eliminated).
SanitizeCurves simulate_sanitization(const SanitizeConfig& config);

}  // namespace sgxp2p::protocol
