// Protocol wire values.
//
// The paper's message format (Section 4): val := ⟨type, id, seq, m, rnd⟩.
//   - type ∈ {INIT, ECHO, ACK} for ERB, plus {CHOSEN, FINAL} for the
//     optimized ERNG and SETUP for the one-time sequence-number exchange.
//   - id    = the instance's initiator,
//   - seq   = the initiator's per-instance sequence number (P6),
//   - m     = the payload (for ACK: H(val) of the message being acked),
//   - rnd   = the sender's current round from trusted time (P5).
// Vals travel only inside SecureLink seals, so everything here — type
// included — is invisible to hosts.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serde.hpp"

namespace sgxp2p::protocol {

enum class MsgType : std::uint8_t {
  kInit = 1,
  kEcho = 2,
  kAck = 3,
  kChosen = 4,
  kFinal = 5,
  kSetup = 6,
  kJoin = 7,     // membership (Appendix G): joiner → sponsor
  kWelcome = 8,  // membership: sponsor → joiner, carries roster + seq table
  kRejoin = 9,   // recovery: relaunched member → sponsor, re-announces seq
  kConfirm = 10,  // shard: intra-committee digest confirmation (gates RECORD)
  kRecord = 11,   // shard: child rep → parent reps, subtree digest + count
  kGlobal = 12,   // shard: global digest flowing down the dissemination tree
};

struct Val {
  MsgType type = MsgType::kInit;
  NodeId initiator = kNoNode;
  std::uint64_t seq = 0;
  std::uint32_t round = 0;
  Bytes payload;

  friend bool operator==(const Val&, const Val&) = default;
};

/// Serializes `val` into `out`, clearing it first but reusing its capacity.
/// Fan-out paths serialize a value once into a scratch buffer and seal the
/// same bytes per link, instead of re-encoding per peer.
inline void serialize_into(const Val& val, Bytes& out) {
  out.clear();
  out.reserve(21 + val.payload.size());
  out.push_back(static_cast<std::uint8_t>(val.type));
  std::size_t n = out.size();
  out.resize(n + 20);
  store_le32(out.data() + n, val.initiator);
  store_le64(out.data() + n + 4, val.seq);
  store_le32(out.data() + n + 12, val.round);
  store_le32(out.data() + n + 16,
             static_cast<std::uint32_t>(val.payload.size()));
  append(out, val.payload);
}

inline Bytes serialize(const Val& val) {
  Bytes out;
  serialize_into(val, out);
  return out;
}

inline std::optional<Val> parse_val(ByteView data) {
  BinaryReader r(data);
  Val val;
  std::uint8_t type = r.u8();
  val.initiator = r.u32();
  val.seq = r.u64();
  val.round = r.u32();
  val.payload = r.bytes();
  if (!r.done()) return std::nullopt;
  if (type < 1 || type > 12) return std::nullopt;
  val.type = static_cast<MsgType>(type);
  return val;
}

inline const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kInit: return "INIT";
    case MsgType::kEcho: return "ECHO";
    case MsgType::kAck: return "ACK";
    case MsgType::kChosen: return "CHOSEN";
    case MsgType::kFinal: return "FINAL";
    case MsgType::kSetup: return "SETUP";
    case MsgType::kJoin: return "JOIN";
    case MsgType::kWelcome: return "WELCOME";
    case MsgType::kRejoin: return "REJOIN";
    case MsgType::kConfirm: return "CONFIRM";
    case MsgType::kRecord: return "RECORD";
    case MsgType::kGlobal: return "GLOBAL";
  }
  return "?";
}

}  // namespace sgxp2p::protocol
