#include "protocol/erb_instance.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "crypto/sha256.hpp"
#include "obs/trace.hpp"

namespace sgxp2p::protocol {

ErbInstance::ErbInstance(ErbConfig config) : cfg_(std::move(config)) {
  CHECK_MSG(!cfg_.participants.empty(), "ErbInstance: empty group");
  std::sort(cfg_.participants.begin(), cfg_.participants.end());
  first_ = cfg_.participants.front();
  contiguous_ = static_cast<std::size_t>(cfg_.participants.back() - first_) + 1 ==
                cfg_.participants.size();
  CHECK_MSG(is_participant(cfg_.self), "ErbInstance: self not in group");
  max_rounds_ = cfg_.max_rounds != 0 ? cfg_.max_rounds : cfg_.t + 2;
  const auto n = static_cast<std::uint32_t>(cfg_.participants.size());
  // Halt when fewer than t ACKs arrive (Algorithm 2's `Nack < t`), but never
  // demand more ACKs than there are other participants.
  ack_threshold_ = std::min(cfg_.t, n - 1);
  // Accept at |S_echo| ≥ N − t (= t + 1 for N = 2t + 1).
  accept_threshold_ = n - cfg_.t;
  self_rank_ = participant_rank(cfg_.self);
  initiator_rank_ = participant_rank(cfg_.instance.initiator);
  s_echo_ = RankSet(cfg_.participants.size());
}

std::uint32_t ErbInstance::instance_round(std::uint32_t global) const {
  if (global < cfg_.start_round) return 0;
  return global - cfg_.start_round + 1;
}

bool ErbInstance::is_participant(NodeId id) const {
  return participant_rank(id) >= 0;
}

int ErbInstance::participant_rank(NodeId id) const {
  if (contiguous_) {
    // Testbed groups are 0..n−1 (and cluster groups a contiguous slice), so
    // rank lookup on the n²-per-round receive path is one subtraction.
    if (id < first_ || id - first_ >= cfg_.participants.size()) return -1;
    return static_cast<int>(id - first_);
  }
  auto it = std::lower_bound(cfg_.participants.begin(),
                             cfg_.participants.end(), id);
  if (it == cfg_.participants.end() || *it != id) return -1;
  return static_cast<int>(it - cfg_.participants.begin());
}

void ErbInstance::multicast(Val val, std::uint32_t global_round, Sends& out) {
  serialize_into(val, hash_scratch_);
  Bytes hash = crypto::Sha256::hash_bytes(hash_scratch_);
  pending_ack_ =
      PendingAck{global_round, std::move(hash), RankSet(cfg_.participants.size())};
  out.multicasts.push_back(std::move(val));
}

void ErbInstance::maybe_accept(std::uint32_t instance_rnd) {
  if (accepted_) return;
  if (s_echo_.size() >= accept_threshold_) {
    accepted_ = true;
    value_ = m_;
    accept_round_ = instance_rnd;
  }
}

ErbInstance::Sends ErbInstance::on_round_begin(std::uint32_t global_round) {
  Sends sends;
  sends.group = &cfg_.participants;
  if (wants_halt_) return sends;
  std::uint32_t rnd = instance_round(global_round);
  if (rnd == 0) return sends;

  // 1. Halt-on-divergence (P4): a multicast from an earlier round must have
  //    gathered at least t ACKs by now.
  if (pending_ack_ && pending_ack_->round < global_round) {
    if (cfg_.enable_halt && pending_ack_->ackers.size() < ack_threshold_) {
      wants_halt_ = true;
      return sends;
    }
    pending_ack_.reset();
  }

  // 2. Initiator: multicast ⟨INIT, id_init, seq_init, m, rnd⟩ in round 1.
  if (cfg_.is_initiator && rnd == 1) {
    m_ = cfg_.init_payload;
    s_echo_.insert(static_cast<std::size_t>(self_rank_));
    Val init{MsgType::kInit, cfg_.instance.initiator, cfg_.instance.epoch,
             global_round, cfg_.init_payload};
    multicast(std::move(init), global_round, sends);
    maybe_accept(rnd);
  }

  // 3. Scheduled ECHO from a first receipt in the previous round
  //    ("Wait(rnd) then Multicast(ECHO, …, rnd+1)").
  if (echo_due_round_ && *echo_due_round_ == rnd && rnd <= max_rounds_) {
    Val echo{MsgType::kEcho, cfg_.instance.initiator, cfg_.instance.epoch,
             global_round, *m_};
    multicast(std::move(echo), global_round, sends);
    // The ECHO's real trigger is last round's INIT/ECHO delivery, not this
    // round tick — hand its span back so the owner scopes the sends to it.
    sends.cause = echo_cause_;
    echo_due_round_.reset();
    echo_cause_ = 0;
  }

  // 4. Timeout: past instance round t + 2 without enough echoes → accept ⊥.
  if (rnd > max_rounds_ && !accepted_) {
    accepted_ = true;
    value_.reset();  // ⊥
    accept_round_ = rnd;
  }
  return sends;
}

ErbInstance::Sends ErbInstance::on_val(NodeId from, const Val& val,
                                       std::uint32_t global_round) {
  Sends sends;
  sends.group = &cfg_.participants;
  if (wants_halt_) return sends;
  std::uint32_t rnd = instance_round(global_round);
  if (rnd == 0 || rnd > max_rounds_) return sends;
  const int from_rank = participant_rank(from);
  if (from_rank < 0) return sends;

  switch (val.type) {
    case MsgType::kInit: {
      // Only the initiator originates INIT. A stale round tag (P5) or wrong
      // sequence number (P6) is treated as an omitted message.
      if (from != cfg_.instance.initiator) break;
      if (val.round != global_round || val.seq != cfg_.instance.epoch) break;
      serialize_into(val, hash_scratch_);
      Val ack{MsgType::kAck, cfg_.instance.initiator, cfg_.instance.epoch,
              global_round, crypto::Sha256::hash_bytes(hash_scratch_)};
      sends.unicasts.push_back(Send{from, std::move(ack)});
      if (!m_) {
        m_ = val.payload;
        s_echo_.insert(static_cast<std::size_t>(initiator_rank_));
        s_echo_.insert(static_cast<std::size_t>(self_rank_));
        echo_due_round_ = rnd + 1;
        echo_cause_ = obs::TraceRecorder::global().current_cause();
        maybe_accept(rnd);
      }
      break;
    }
    case MsgType::kEcho: {
      if (val.round != global_round || val.seq != cfg_.instance.epoch) break;
      serialize_into(val, hash_scratch_);
      Val ack{MsgType::kAck, cfg_.instance.initiator, cfg_.instance.epoch,
              global_round, crypto::Sha256::hash_bytes(hash_scratch_)};
      sends.unicasts.push_back(Send{from, std::move(ack)});
      if (!m_) {
        m_ = val.payload;
        s_echo_.insert(static_cast<std::size_t>(self_rank_));
        echo_due_round_ = rnd + 1;
        echo_cause_ = obs::TraceRecorder::global().current_cause();
      }
      s_echo_.insert(static_cast<std::size_t>(from_rank));
      maybe_accept(rnd);
      break;
    }
    case MsgType::kAck: {
      if (!pending_ack_) break;
      // The ACK must arrive in the multicast's round and carry H(val) of
      // exactly what we sent.
      if (val.round != pending_ack_->round ||
          global_round != pending_ack_->round) {
        break;
      }
      if (val.payload != pending_ack_->expected_hash) break;
      pending_ack_->ackers.insert(static_cast<std::size_t>(from_rank));
      break;
    }
    default:
      break;
  }
  return sends;
}

}  // namespace sgxp2p::protocol
