#include "protocol/rb_early.hpp"

#include "common/serde.hpp"

namespace sgxp2p::protocol {

Bytes RbEarlyNode::encode(State state, const Bytes& value,
                          std::uint32_t rnd) const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(state));
  w.u32(rnd);
  w.bytes(state == State::kValue ? value : Bytes{});
  return w.take();
}

void RbEarlyNode::on_message(NodeId from, ByteView data) {
  BinaryReader r(data);
  auto state = static_cast<State>(r.u8());
  std::uint32_t rnd = r.u32();
  Bytes value = r.bytes();
  if (!r.done()) return;
  if (rnd != round()) return;  // synchronous model: stale → dropped
  inbox_[from] = {state, std::move(value)};
}

void RbEarlyNode::round_begin(std::uint32_t rnd) {
  if (result_.decided) return;

  // The initiator decides and broadcasts immediately (Algorithm 5 line 2).
  if (rnd == 1) {
    if (self_ == initiator_) {
      state_ = State::kValue;
      value_ = payload_;
      multicast(encode(state_, value_, rnd));
      result_.decided = true;
      result_.value = value_;
      result_.round = 1;
      return;
    }
    // Everyone else reports liveness with '?'.
    multicast(encode(State::kUnknown, {}, rnd));
    inbox_round_ = rnd;
    inbox_.clear();
    return;
  }

  // ---- Examine last round's arrivals (they are complete at the boundary).
  for (NodeId peer = 0; peer < n_; ++peer) {
    if (peer == self_) continue;
    if (!inbox_.contains(peer)) quiet_.insert(peer);
  }
  if (state_ == State::kUnknown) {
    // Adopt any decision heard; prefer a value over ⊥.
    for (const auto& [peer, msg] : inbox_) {
      if (msg.first == State::kValue) {
        state_ = State::kValue;
        value_ = msg.second;
        break;
      }
      if (msg.first == State::kBottom) state_ = State::kBottom;
    }
  }
  if (state_ == State::kUnknown) {
    // Early ⊥: more silent rounds than there are quiet (faulty) nodes means
    // the broadcast value cannot be in flight anymore.
    std::uint32_t prev = rnd - 1;
    if (prev > quiet_.size()) state_ = State::kBottom;
  }
  inbox_.clear();
  inbox_round_ = rnd;

  // ---- Broadcast this round's state; decide one round after fixing it.
  if (state_ != State::kUnknown) {
    if (rnd <= t_ + 1) multicast(encode(state_, value_, rnd));
    if (broadcast_decision_pending_ || rnd >= t_ + 1) {
      result_.decided = true;
      result_.value = (state_ == State::kValue)
                          ? std::optional<Bytes>(value_)
                          : std::nullopt;
      result_.round = rnd;
      return;
    }
    broadcast_decision_pending_ = true;
    return;
  }

  // Still unknown: liveness ping, or give up at the deadline.
  if (rnd <= t_ + 1) {
    multicast(encode(State::kUnknown, {}, rnd));
  } else {
    result_.decided = true;
    result_.value.reset();
    result_.round = rnd;
  }
}

}  // namespace sgxp2p::protocol
