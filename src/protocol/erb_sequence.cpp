#include "protocol/erb_sequence.hpp"

#include <numeric>

#include "common/check.hpp"

namespace sgxp2p::protocol {

ErbSequenceNode::ErbSequenceNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                                 sgx::EnclaveHostIface& host,
                                 PeerConfig config, const sgx::SimIAS& ias,
                                 NodeId initiator, std::vector<Bytes> payloads)
    : PeerEnclave(platform, cpu, ErbSequenceNode::program(), host, config,
                  ias),
      initiator_(initiator),
      payloads_(std::move(payloads)),
      executions_(payloads_.size()) {}

void ErbSequenceNode::open_execution(std::size_t e) {
  auto seq = expected_seq(initiator_);
  CHECK_MSG(seq.has_value(), "ErbSequenceNode: initiator sequence unknown");
  ErbConfig cfg;
  cfg.self = config().self;
  cfg.instance = InstanceId{initiator_, *seq};
  cfg.participants.resize(config().n);
  std::iota(cfg.participants.begin(), cfg.participants.end(), NodeId{0});
  cfg.t = config().t;
  cfg.start_round = static_cast<std::uint32_t>(e) * window() + 1;
  cfg.is_initiator = (config().self == initiator_);
  cfg.init_payload = payloads_[e];
  instance_ = std::make_unique<ErbInstance>(std::move(cfg));
  exec_open_ = true;
}

void ErbSequenceNode::close_execution(std::uint32_t round) {
  ExecutionResult res;
  res.decided = instance_->accepted();
  if (instance_->has_value()) res.value = instance_->value();
  res.round = instance_->accept_round();
  results_.push_back(std::move(res));
  instance_.reset();
  exec_open_ = false;
  ++current_exec_;
  // "After every valid instance ... increase all sequence numbers by 1."
  bump_all_seqs();
  (void)round;
}

void ErbSequenceNode::perform(const ErbInstance::Sends& sends) {
  // A deferred batch (the scheduled ECHO) is causally the child of last
  // round's delivery, not of the round tick that flushed it.
  obs::TraceRecorder::Scope causal(sends.cause);
  // Multicasts first — that is the order the old per-peer vector carried.
  for (const Val& v : sends.multicasts) broadcast_val(*sends.group, v);
  for (const auto& send : sends.unicasts) send_val(send.to, send.val);
}

void ErbSequenceNode::on_round_begin(std::uint32_t round) {
  if (current_exec_ >= executions_) return;

  // Execution e occupies rounds [e·(t+2)+1, (e+1)·(t+2)]; the window closes
  // at the first tick past its last round, so decisions arriving during the
  // final round are still counted.
  if (exec_open_) {
    std::uint32_t window_start =
        static_cast<std::uint32_t>(current_exec_) * window() + 1;
    if (round >= window_start + window()) {
      if (!instance_->accepted()) {
        // Instance round is now t + 3 > max: this forces the ⊥ decision.
        (void)instance_->on_round_begin(round);
      }
      close_execution(round);
      if (current_exec_ >= executions_) return;
    }
  }

  std::uint32_t window_start =
      static_cast<std::uint32_t>(current_exec_) * window() + 1;
  if (!exec_open_ && round == window_start) open_execution(current_exec_);
  if (!exec_open_) return;

  perform(instance_->on_round_begin(round));
  if (instance_->wants_halt()) halt_self();
}

void ErbSequenceNode::on_val(NodeId from, const Val& val) {
  if (!exec_open_ || val.initiator != initiator_) return;
  perform(instance_->on_val(from, val, current_round()));
  if (instance_->wants_halt()) halt_self();
}

}  // namespace sgxp2p::protocol
