#include "protocol/sanitizer.hpp"

#include <cmath>

namespace sgxp2p::protocol {

SanitizeCurves simulate_sanitization(const SanitizeConfig& config) {
  const std::uint32_t r_max = config.instances;
  SanitizeCurves out;
  out.pr_byz_remaining.assign(r_max, 0.0);
  out.pr_bound.assign(r_max, 0.0);
  out.mean_byzantine.assign(r_max, 0.0);
  out.mean_rounds.assign(r_max, 0.0);

  std::vector<double> round_cost_sum(r_max, 0.0);

  for (std::uint32_t trial = 0; trial < config.trials; ++trial) {
    Rng rng(config.seed * 7919 + trial);
    std::uint32_t f = config.t0;
    double cumulative_rounds = 0.0;
    for (std::uint32_t r = 0; r < r_max; ++r) {
      // Each byzantine node misbehaves independently with probability p.
      std::uint32_t misbehaved = 0;
      for (std::uint32_t i = 0; i < f; ++i) {
        if (rng.chance(config.p)) ++misbehaved;
      }
      // Misbehavers are churned out (P4); replacements re-join, byzantine
      // with probability `rejoin_byzantine`.
      std::uint32_t rejoin_byz = 0;
      for (std::uint32_t i = 0; i < misbehaved; ++i) {
        if (rng.chance(config.rejoin_byzantine)) ++rejoin_byz;
      }
      f = f - misbehaved + rejoin_byz;

      // Instance round cost: 2 honest-path rounds, or f+2 when a chain of
      // misbehavers delays the broadcast (worst case of Section 6.3).
      double cost = misbehaved == 0 ? 2.0
                                    : static_cast<double>(misbehaved) + 2.0;
      cumulative_rounds += cost;

      out.mean_byzantine[r] += f;
      if (f >= 1) out.pr_byz_remaining[r] += 1.0;
      round_cost_sum[r] += cumulative_rounds / static_cast<double>(r + 1);
    }
  }

  const double trials = config.trials;
  for (std::uint32_t r = 0; r < r_max; ++r) {
    out.pr_byz_remaining[r] /= trials;
    out.mean_byzantine[r] /= trials;
    out.mean_rounds[r] = round_cost_sum[r] / trials;
    // Theorem D.1: Pr[F_r ≥ 1] ≤ t · (1 − p/2)^r, capped at 1.
    double bound = static_cast<double>(config.t0) *
                   std::pow(1.0 - config.p / 2.0, static_cast<double>(r + 1));
    out.pr_bound[r] = std::min(1.0, bound);
  }
  return out;
}

}  // namespace sgxp2p::protocol
