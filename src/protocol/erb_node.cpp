#include "protocol/erb_node.hpp"

#include <numeric>

#include "common/check.hpp"

namespace sgxp2p::protocol {

ErbNode::ErbNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                 sgx::EnclaveHostIface& host, PeerConfig config,
                 const sgx::SimIAS& ias, NodeId initiator, Bytes payload,
                 bool enable_halt)
    : PeerEnclave(platform, cpu, ErbNode::program(), host, config, ias),
      initiator_(initiator),
      payload_(std::move(payload)),
      enable_halt_(enable_halt) {}

void ErbNode::on_protocol_start() {
  auto seq = expected_seq(initiator_);
  CHECK_MSG(seq.has_value(), "ErbNode: initiator sequence unknown");
  ErbConfig cfg;
  cfg.self = config().self;
  cfg.instance = InstanceId{initiator_, *seq};
  cfg.participants.resize(config().n);
  std::iota(cfg.participants.begin(), cfg.participants.end(), NodeId{0});
  cfg.t = config().t;
  cfg.start_round = 1;
  cfg.is_initiator = (config().self == initiator_);
  cfg.init_payload = payload_;
  cfg.enable_halt = enable_halt_;
  instance_ = std::make_unique<ErbInstance>(std::move(cfg));
}

void ErbNode::perform(const ErbInstance::Sends& sends) {
  // A deferred batch (the scheduled ECHO) is causally the child of last
  // round's delivery, not of the round tick that flushed it.
  obs::TraceRecorder::Scope causal(sends.cause);
  // Multicasts first — that is the order the old per-peer vector carried.
  for (const Val& v : sends.multicasts) broadcast_val(*sends.group, v);
  for (const auto& send : sends.unicasts) send_val(send.to, send.val);
}

void ErbNode::refresh_status() {
  if (instance_->wants_halt()) {
    halt_self();
    return;
  }
  if (instance_->accepted() && !result_.decided) {
    result_.decided = true;
    result_.value = instance_->has_value()
                        ? std::optional<Bytes>(instance_->value())
                        : std::nullopt;
    result_.round = instance_->accept_round();
    result_.decided_at = trusted_time();
    obs_counter("decides").inc();
    obs::MetricsRegistry::current()
        .histogram("erb.decide_latency_ms",
                   {1000, 2000, 4000, 8000, 16000, 60000, 300000, 1200000})
        .observe(result_.decided_at - start_time());
    obs_event("decide", obs::fnum("round", result_.round),
              obs::fnum("bottom", result_.value.has_value() ? 0 : 1),
              obs::fnum("latency_ms", result_.decided_at - start_time()));
  }
}

void ErbNode::on_round_begin(std::uint32_t round) {
  perform(instance_->on_round_begin(round));
  refresh_status();
}

void ErbNode::on_val(NodeId from, const Val& val) {
  if (val.initiator != initiator_) return;
  perform(instance_->on_val(from, val, current_round()));
  refresh_status();
}

}  // namespace sgxp2p::protocol
