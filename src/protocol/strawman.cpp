#include "protocol/strawman.hpp"

namespace sgxp2p::protocol {

void StrawmanNode::round_begin(std::uint32_t rnd) {
  if (rnd == 1 && is_initiator_) {
    do_initiate();
    return;
  }
  if (echo_pending_) {
    echo_pending_ = false;
    multicast(encode(2, *m_));
  }
  if (rnd > t_ + 1 && !result_.decided) {
    result_.decided = true;
    result_.value.reset();  // ⊥
    result_.round = rnd;
  }
}

void StrawmanNode::do_initiate() {
  m_ = payload_;
  s_m_.insert(self_);
  result_.decided = true;
  result_.value = payload_;
  result_.round = 1;
  multicast(encode(1, payload_));
}

void StrawmanNode::on_message(NodeId from, ByteView data) {
  BinaryReader r(data);
  std::uint8_t type = r.u8();
  Bytes m = r.bytes();
  if (!r.done() || (type != 1 && type != 2)) return;
  if (result_.decided) return;

  if (!m_) {
    // Adopt whatever arrives first — Algorithm 1 cannot tell forgeries
    // apart from the real thing.
    m_ = m;
    s_m_.insert(self_);
    echo_pending_ = true;
  }
  if (m == *m_) {
    s_m_.insert(from);
    if (s_m_.size() >= n_ - t_) {
      result_.decided = true;
      result_.value = m_;
      result_.round = round();
    }
  }
}

void EquivocatingStrawmanInitiator::do_initiate() {
  // Half the peers see m0, the rest m1 — trivially violates agreement.
  for (NodeId peer = 0; peer < n_; ++peer) {
    if (peer == self_) continue;
    send(peer, encode(1, peer % 2 == 0 ? m0_ : m1_));
  }
  result_.decided = true;
  result_.value = m0_;
  result_.round = 1;
}

}  // namespace sgxp2p::protocol
