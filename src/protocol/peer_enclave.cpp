#include "protocol/peer_enclave.hpp"

#include <algorithm>

#include "channel/handshake.hpp"
#include "common/check.hpp"
#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"
#include "obs/pool.hpp"

namespace sgxp2p::protocol {

namespace {
/// Maps a program identity onto the stable metric/trace namespace. Static
/// strings only: trace events store the pointer.
const char* obs_namespace(const std::string& program_name) {
  if (program_name.rfind("erng", 0) == 0) return "erng";
  if (program_name.rfind("erb", 0) == 0) return "erb";
  if (program_name.rfind("eba", 0) == 0) return "eba";
  if (program_name.rfind("shard", 0) == 0) return "shard";
  return "peer";
}
}  // namespace

PeerEnclave::PeerEnclave(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                         const sgx::ProgramIdentity& program,
                         sgx::EnclaveHostIface& host, PeerConfig config,
                         const sgx::SimIAS& ias)
    : sgx::Enclave(platform, cpu, program, host),
      cfg_(config),
      ias_(&ias),
      obs_ns_(obs_namespace(program.name)) {
  CHECK_MSG(cfg_.n >= 1 && cfg_.self < cfg_.n, "PeerEnclave: bad id/size");
  CHECK_MSG(2 * cfg_.t < cfg_.n, "PeerEnclave: t must satisfy t < N/2");
  dh_private_ = read_rand().generate(crypto::kX25519KeySize);
  my_seq_ = read_rand().next_u64();
}

Bytes PeerEnclave::handshake_blob() {
  Bytes dh_public = crypto::x25519_public(dh_private_);
  sgx::Quote q = quote(dh_public);
  return channel::make_handshake(cfg_.self, std::move(q)).serialize();
}

bool PeerEnclave::accept_handshake(ByteView blob) {
  auto msg = channel::HandshakeMsg::deserialize(blob);
  if (!msg) return false;
  auto keys = channel::complete_handshake(*msg, cfg_.self, dh_private_,
                                          measurement(), *ias_);
  if (!keys) return false;
  links_.insert_or_assign(
      msg->sender, channel::SecureLink(cfg_.self, msg->sender,
                                       std::move(*keys), measurement()));
  return true;
}

void PeerEnclave::install_fast_link(NodeId peer) {
  // Called once per ordered pair by the harness; no dedupe needed (and a
  // linear scan here would make O(N²) setup O(N³) at benchmark scale).
  if (peer != cfg_.self) fast_peers_.push_back(peer);
}

Bytes PeerEnclave::make_seq_blob(NodeId to) {
  Val val;
  val.type = MsgType::kSetup;
  val.initiator = cfg_.self;
  val.seq = my_seq_;
  val.round = 0;
  return seal_for(to, serialize(val));
}

bool PeerEnclave::accept_seq_blob(NodeId from, ByteView blob) {
  auto plaintext = open_from(from, blob);
  if (!plaintext) return false;
  auto val = parse_val(*plaintext);
  if (!val || val->type != MsgType::kSetup || val->initiator != from) {
    return false;
  }
  peer_seq_[from] = val->seq;
  return true;
}

void PeerEnclave::start_protocol(SimTime t0) {
  CHECK_MSG(!started_, "start_protocol called twice");
  started_ = true;
  start_time_ = t0;
  obs_event("protocol_start", obs::fnum("t0", t0),
            obs::fnum("n", cfg_.n), obs::fnum("t", cfg_.t));
  on_protocol_start();
}

std::uint32_t PeerEnclave::current_round() const {
  if (!started_ || cfg_.round_ms <= 0) return 0;
  SimTime now = trusted_time();
  if (now < start_time_) return 0;
  return static_cast<std::uint32_t>((now - start_time_) / cfg_.round_ms) + 1;
}

void PeerEnclave::on_tick() {
  if (!started_ || halted_) return;
  std::uint32_t rnd = current_round();
  if (rnd == 0) return;
  account_ecall("tick");  // the trusted timer enters the enclave
  if (rounds_ctr_ == nullptr) rounds_ctr_ = &obs_counter("round_begin");
  rounds_ctr_->inc();
  // The round tick is a causal root; everything the protocol does at the
  // boundary (scheduled ECHOs, retries) descends from this span.
  std::uint64_t span = obs_event("round_begin", obs::fnum("round", rnd));
  obs::TraceRecorder::Scope causal(span);
  on_round_begin(rnd);
}

void PeerEnclave::halt_self() {
  if (halted_) return;
  halted_ = true;
  obs_counter("halts").inc();
  obs_event("halt", obs::fnum("round", current_round()));
}

obs::Counter& PeerEnclave::obs_counter(const char* name, const char* label) {
  std::string full(obs_ns_);
  full += '.';
  full += name;
  return obs::MetricsRegistry::current().counter(full, label);
}

std::uint64_t PeerEnclave::obs_event(const char* event, obs::TraceField f0,
                                     obs::TraceField f1, obs::TraceField f2,
                                     obs::TraceField f3) {
  obs::TraceRecorder& tr = obs::TraceRecorder::global();
  if (!tr.enabled()) return 0;  // skip the trusted_time() read when off
  return tr.record(obs::TraceEvent{trusted_time(), cfg_.self, 0, 0, obs_ns_,
                                   event, {f0, f1, f2, f3}});
}

void PeerEnclave::deliver(NodeId from, ByteView blob) {
  if (!started_ || halted_) return;
  auto plaintext = open_from(from, blob);
  if (!plaintext) return;  // forged, corrupted, or replayed — an omission
  auto val = parse_val(*plaintext);
  // parse_val copied what it keeps; recycle the plaintext buffer so the
  // next open (or seal) on this thread reuses its capacity.
  obs::BufferPool::local().release(std::move(*plaintext));
  if (!val) return;
  on_val(from, *val);
}

std::optional<std::uint64_t> PeerEnclave::expected_seq(
    NodeId initiator) const {
  if (initiator == cfg_.self) return my_seq_;
  auto it = peer_seq_.find(initiator);
  if (it == peer_seq_.end()) return std::nullopt;
  return it->second;
}

void PeerEnclave::bump_all_seqs() {
  ++my_seq_;
  for (auto& [id, seq] : peer_seq_) ++seq;
}

void PeerEnclave::account_send(const Val& val, NodeId to,
                               std::size_t wire_bytes) {
  send_stats_.count(val.type, wire_bytes);
  auto slot = static_cast<std::size_t>(val.type);
  if (slot < SendStats::kTypeSlots) {
    if (type_counters_[slot] == nullptr) {
      type_counters_[slot] = &obs_counter("send", msg_type_name(val.type));
    }
    type_counters_[slot]->inc();
  }
  if (send_bytes_ctr_ == nullptr) {
    send_bytes_ctr_ = &obs_counter("send_bytes");
  }
  send_bytes_ctr_->inc(wire_bytes);
  obs_event("send", obs::fstr("type", msg_type_name(val.type)),
            obs::fnum("to", to), obs::fnum("round", val.round),
            obs::fnum("bytes", static_cast<std::int64_t>(wire_bytes)));
}

void PeerEnclave::send_val(NodeId to, const Val& val) {
  if (halted_ || to == cfg_.self) return;
  serialize_into(val, wire_scratch_);
  Bytes blob = seal_for(to, wire_scratch_);
  account_send(val, to, blob.size());
  ocall_transfer(to, std::move(blob));
}

void PeerEnclave::broadcast_val(const std::vector<NodeId>& group,
                                const Val& val) {
  if (halted_) return;
  serialize_into(val, wire_scratch_);
  for (NodeId to : group) {
    if (to == cfg_.self) continue;
    Bytes blob = seal_for(to, wire_scratch_);
    account_send(val, to, blob.size());
    ocall_transfer(to, std::move(blob));
  }
}

std::vector<NodeId> PeerEnclave::peers() const {
  std::vector<NodeId> out;
  if (cfg_.mode == ChannelMode::kAttested) {
    out.reserve(links_.size());
    for (const auto& [id, link] : links_) out.push_back(id);
  } else {
    out = fast_peers_;
  }
  std::sort(out.begin(), out.end());
  return out;
}

Bytes PeerEnclave::export_core_state() const {
  BinaryWriter w;
  w.str("sgxp2p-core-v1");
  w.u64(my_seq_);
  // Name-sorted serialization so same-seed checkpoints are byte-identical.
  std::vector<std::pair<NodeId, std::uint64_t>> seqs(peer_seq_.begin(),
                                                     peer_seq_.end());
  std::sort(seqs.begin(), seqs.end());
  w.u32(static_cast<std::uint32_t>(seqs.size()));
  for (const auto& [id, seq] : seqs) {
    w.u32(id);
    w.u64(seq);
  }
  std::vector<NodeId> link_ids = peers();
  w.u32(static_cast<std::uint32_t>(
      cfg_.mode == ChannelMode::kAttested ? link_ids.size() : 0));
  if (cfg_.mode == ChannelMode::kAttested) {
    for (NodeId id : link_ids) w.bytes(links_.at(id).serialize());
  }
  return w.take();
}

bool PeerEnclave::import_core_state(ByteView data) {
  BinaryReader r(data);
  if (r.str() != "sgxp2p-core-v1") return false;
  std::uint64_t my_seq = r.u64();
  std::uint32_t n_seqs = r.u32();
  if (!r.ok() || n_seqs > 1 << 20) return false;
  std::unordered_map<NodeId, std::uint64_t> seqs;
  for (std::uint32_t i = 0; i < n_seqs; ++i) {
    NodeId id = r.u32();
    seqs[id] = r.u64();
  }
  std::uint32_t n_links = r.u32();
  if (!r.ok() || n_links > 1 << 20) return false;
  std::unordered_map<NodeId, channel::SecureLink> links;
  for (std::uint32_t i = 0; i < n_links; ++i) {
    auto link = channel::SecureLink::deserialize(r.bytes(), measurement());
    if (!link) return false;
    NodeId peer = link->peer();
    links.insert_or_assign(peer, std::move(*link));
  }
  if (!r.done()) return false;
  my_seq_ = my_seq;
  peer_seq_ = std::move(seqs);
  for (auto& [id, link] : links) links_.insert_or_assign(id, std::move(link));
  return true;
}

Bytes PeerEnclave::seal_for(NodeId to, ByteView plaintext) {
  if (cfg_.mode == ChannelMode::kAttested) {
    auto it = links_.find(to);
    CHECK_MSG(it != links_.end(), "seal_for: no link with peer");
    return it->second.seal(plaintext);
  }
  // Accounted mode: same wire size, no cipher work. acquire() zero-fills
  // the header bytes exactly like the old `Bytes out(kAeadOverhead, 0)`.
  Bytes out = obs::BufferPool::local().acquire(crypto::kAeadOverhead);
  append(out, plaintext);
  return out;
}

std::optional<Bytes> PeerEnclave::open_from(NodeId from, ByteView blob) {
  if (cfg_.mode == ChannelMode::kAttested) {
    auto it = links_.find(from);
    if (it == links_.end()) return std::nullopt;
    return it->second.open(blob);
  }
  if (blob.size() < crypto::kAeadOverhead) return std::nullopt;
  Bytes plaintext =
      obs::BufferPool::local().acquire_empty(blob.size() - crypto::kAeadOverhead);
  plaintext.assign(blob.begin() + crypto::kAeadOverhead, blob.end());
  return plaintext;
}

}  // namespace sgxp2p::protocol
