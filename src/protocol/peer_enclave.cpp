#include "protocol/peer_enclave.hpp"

#include <algorithm>

#include "channel/handshake.hpp"
#include "common/check.hpp"
#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"

namespace sgxp2p::protocol {

PeerEnclave::PeerEnclave(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                         const sgx::ProgramIdentity& program,
                         sgx::EnclaveHostIface& host, PeerConfig config,
                         const sgx::SimIAS& ias)
    : sgx::Enclave(platform, cpu, program, host), cfg_(config), ias_(&ias) {
  CHECK_MSG(cfg_.n >= 1 && cfg_.self < cfg_.n, "PeerEnclave: bad id/size");
  CHECK_MSG(2 * cfg_.t < cfg_.n, "PeerEnclave: t must satisfy t < N/2");
  dh_private_ = read_rand().generate(crypto::kX25519KeySize);
  my_seq_ = read_rand().next_u64();
}

Bytes PeerEnclave::handshake_blob() {
  Bytes dh_public = crypto::x25519_public(dh_private_);
  sgx::Quote q = quote(dh_public);
  return channel::make_handshake(cfg_.self, std::move(q)).serialize();
}

bool PeerEnclave::accept_handshake(ByteView blob) {
  auto msg = channel::HandshakeMsg::deserialize(blob);
  if (!msg) return false;
  auto keys = channel::complete_handshake(*msg, cfg_.self, dh_private_,
                                          measurement(), *ias_);
  if (!keys) return false;
  links_.insert_or_assign(
      msg->sender, channel::SecureLink(cfg_.self, msg->sender,
                                       std::move(*keys), measurement()));
  return true;
}

void PeerEnclave::install_fast_link(NodeId peer) {
  // Called once per ordered pair by the harness; no dedupe needed (and a
  // linear scan here would make O(N²) setup O(N³) at benchmark scale).
  if (peer != cfg_.self) fast_peers_.push_back(peer);
}

Bytes PeerEnclave::make_seq_blob(NodeId to) {
  Val val;
  val.type = MsgType::kSetup;
  val.initiator = cfg_.self;
  val.seq = my_seq_;
  val.round = 0;
  return seal_for(to, serialize(val));
}

bool PeerEnclave::accept_seq_blob(NodeId from, ByteView blob) {
  auto plaintext = open_from(from, blob);
  if (!plaintext) return false;
  auto val = parse_val(*plaintext);
  if (!val || val->type != MsgType::kSetup || val->initiator != from) {
    return false;
  }
  peer_seq_[from] = val->seq;
  return true;
}

void PeerEnclave::start_protocol(SimTime t0) {
  CHECK_MSG(!started_, "start_protocol called twice");
  started_ = true;
  start_time_ = t0;
  on_protocol_start();
}

std::uint32_t PeerEnclave::current_round() const {
  if (!started_ || cfg_.round_ms <= 0) return 0;
  SimTime now = trusted_time();
  if (now < start_time_) return 0;
  return static_cast<std::uint32_t>((now - start_time_) / cfg_.round_ms) + 1;
}

void PeerEnclave::on_tick() {
  if (!started_ || halted_) return;
  std::uint32_t rnd = current_round();
  if (rnd == 0) return;
  on_round_begin(rnd);
}

void PeerEnclave::deliver(NodeId from, ByteView blob) {
  if (!started_ || halted_) return;
  auto plaintext = open_from(from, blob);
  if (!plaintext) return;  // forged, corrupted, or replayed — an omission
  auto val = parse_val(*plaintext);
  if (!val) return;
  on_val(from, *val);
}

std::optional<std::uint64_t> PeerEnclave::expected_seq(
    NodeId initiator) const {
  if (initiator == cfg_.self) return my_seq_;
  auto it = peer_seq_.find(initiator);
  if (it == peer_seq_.end()) return std::nullopt;
  return it->second;
}

void PeerEnclave::bump_all_seqs() {
  ++my_seq_;
  for (auto& [id, seq] : peer_seq_) ++seq;
}

void PeerEnclave::send_val(NodeId to, const Val& val) {
  if (halted_ || to == cfg_.self) return;
  Bytes blob = seal_for(to, serialize(val));
  send_stats_.count(val.type, blob.size());
  ocall_transfer(to, std::move(blob));
}

std::vector<NodeId> PeerEnclave::peers() const {
  std::vector<NodeId> out;
  if (cfg_.mode == ChannelMode::kAttested) {
    out.reserve(links_.size());
    for (const auto& [id, link] : links_) out.push_back(id);
  } else {
    out = fast_peers_;
  }
  std::sort(out.begin(), out.end());
  return out;
}

Bytes PeerEnclave::seal_for(NodeId to, ByteView plaintext) {
  if (cfg_.mode == ChannelMode::kAttested) {
    auto it = links_.find(to);
    CHECK_MSG(it != links_.end(), "seal_for: no link with peer");
    return it->second.seal(plaintext);
  }
  // Accounted mode: same wire size, no cipher work.
  Bytes out(crypto::kAeadOverhead, 0);
  append(out, plaintext);
  return out;
}

std::optional<Bytes> PeerEnclave::open_from(NodeId from, ByteView blob) {
  if (cfg_.mode == ChannelMode::kAttested) {
    auto it = links_.find(from);
    if (it == links_.end()) return std::nullopt;
    return it->second.open(blob);
  }
  if (blob.size() < crypto::kAeadOverhead) return std::nullopt;
  return Bytes(blob.begin() + crypto::kAeadOverhead, blob.end());
}

}  // namespace sgxp2p::protocol
