#include "protocol/erng_opt.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/serde.hpp"

namespace sgxp2p::protocol {

namespace {
constexpr std::size_t kRandSize = 32;

Bytes serialize_set(const std::vector<Bytes>& values) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (const Bytes& v : values) w.bytes(v);
  return w.take();
}

std::optional<std::vector<Bytes>> parse_set(ByteView data) {
  BinaryReader r(data);
  std::uint32_t n = r.u32();
  if (!r.ok() || n > 4096) return std::nullopt;
  std::vector<Bytes> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.bytes());
  if (!r.done()) return std::nullopt;
  return out;
}
}  // namespace

ErngOptNode::ErngOptNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                         sgx::EnclaveHostIface& host, PeerConfig config,
                         const sgx::SimIAS& ias, ErngOptParams params)
    : PeerEnclave(platform, cpu, ErngOptNode::program(), host, config, ias),
      params_(params) {}

void ErngOptNode::on_protocol_start() {
  gamma_ = params_.gamma != 0
               ? params_.gamma
               : std::max<std::uint32_t>(
                     4, static_cast<std::uint32_t>(
                            std::ceil(std::log2(std::max(2u, config().n)))));
  fallback_ = params_.force_fallback || config().n < 4 * gamma_;
}

void ErngOptNode::fix_cluster_parameters() {
  cluster_.assign(s_chosen_.begin(), s_chosen_.end());
  const auto n_c = static_cast<std::uint32_t>(cluster_.size());
  cluster_t_ = n_c > 0 ? (n_c - 1) / 2 : 0;
  cluster_max_rounds_ = cluster_t_ + 2;
  // Instance round 1 is global round 2; instances decide (value or forced ⊥)
  // by the tick of global round cluster_max_rounds_ + 2, and FINAL sets are
  // multicast in that same round.
  final_round_ = cluster_max_rounds_ + 2;
  accept_threshold_ = n_c / 2 + 1;
}

ErbInstance* ErngOptNode::instance_for(NodeId initiator) {
  if (!chosen_ || !in_cluster(initiator)) return nullptr;
  auto it = instances_.find(initiator);
  if (it == instances_.end()) {
    ErbConfig cfg;
    cfg.self = config().self;
    cfg.instance = InstanceId{initiator, expected_seq(initiator).value_or(0)};
    cfg.participants = cluster_;
    cfg.t = cluster_t_;
    cfg.start_round = 2;
    cfg.max_rounds = cluster_max_rounds_;
    cfg.is_initiator = false;
    it = instances_.emplace(initiator, ErbInstance(std::move(cfg))).first;
  }
  return &it->second;
}

void ErngOptNode::perform(const ErbInstance::Sends& sends) {
  // A deferred batch (the scheduled ECHO) is causally the child of last
  // round's delivery, not of the round tick that flushed it.
  obs::TraceRecorder::Scope causal(sends.cause);
  // Multicasts first — that is the order the old per-peer vector carried.
  for (const Val& v : sends.multicasts) broadcast_val(*sends.group, v);
  for (const auto& send : sends.unicasts) send_val(send.to, send.val);
}

void ErngOptNode::on_round_begin(std::uint32_t round) {
  if (round == 1) {
    // --- Cluster selection ---
    if (fallback_) {
      // Paper §6.2 small-N mode: first ⌈2N/3⌉ nodes form the cluster. The
      // membership is a function of N alone — public knowledge, like the
      // identifier list (S1) — so seed S_chosen deterministically instead of
      // learning it from kChosen receipt. (A byzantine cluster member could
      // otherwise withhold its kChosen from a single peer and split cluster
      // views: the victim derives smaller t_c/final_round parameters,
      // rejects everyone's FINALs, and outputs ⊥ while the rest agree.)
      std::uint32_t size = (2 * config().n + 2) / 3;
      chosen_ = config().self < size;
      for (NodeId id = 0; id < size; ++id) s_chosen_.insert(id);
    } else {
      std::uint64_t bound = std::max<std::uint64_t>(1, config().n / (2 * gamma_));
      chosen_ = read_rand().next_below(bound) == 0;
    }
    if (chosen_) {
      s_chosen_.insert(config().self);
      obs_counter("cluster_chosen").inc();
      obs_event("cluster_chosen", obs::fnum("fallback", fallback_ ? 1 : 0));
      Val v{MsgType::kChosen, config().self, my_seq(), round, {}};
      broadcast_val(peers(), v);
    }
    return;
  }

  if (round == 2) {
    // --- Second-phase sampling; cluster membership is now fixed ---
    fix_cluster_parameters();
    if (chosen_ && !cluster_.empty()) {
      auto gamma_eff = static_cast<std::uint32_t>((cluster_.size() + 1) / 2);
      auto gamma2 = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(
                 std::sqrt(static_cast<double>(gamma_eff)))));
      if (params_.one_phase) gamma2 = 1;
      if (read_rand().next_below(gamma2) == 0) {
        result_.second_phase = true;
        obs_counter("second_phase_initiators").inc();
        obs_event("second_phase_init",
                  obs::fnum("cluster", static_cast<std::int64_t>(
                                           cluster_.size())));
        ErbConfig cfg;
        cfg.self = config().self;
        cfg.instance = InstanceId{config().self, my_seq()};
        cfg.participants = cluster_;
        cfg.t = cluster_t_;
        cfg.start_round = 2;
        cfg.max_rounds = cluster_max_rounds_;
        cfg.is_initiator = true;
        cfg.init_payload = read_rand().generate(kRandSize);
        instances_.emplace(config().self, ErbInstance(std::move(cfg)));
      }
    }
    result_.chosen = chosen_;
    result_.cluster_size = cluster_.size();
  }

  // --- Drive cluster ERB instances ---
  if (chosen_) {
    for (auto& [initiator, inst] : instances_) {
      perform(inst.on_round_begin(round));
      if (inst.wants_halt()) {
        halt_self();
        return;
      }
    }
  }

  // --- FINAL phase ---
  if (final_round_ != 0 && round == final_round_ && chosen_ && !final_sent_) {
    send_final(round);
  }
  if (final_round_ != 0 && round > final_round_ + 1 && !result_.done) {
    // No quorum of identical sets arrived — output ⊥.
    result_.done = true;
    result_.is_bottom = true;
    result_.round = round;
    result_.decided_at = trusted_time();
    record_decide();
  }
}

void ErngOptNode::record_decide() {
  obs_counter("decides").inc();
  obs::MetricsRegistry::current()
      .histogram("erng.decide_latency_ms",
                 {1000, 2000, 4000, 8000, 16000, 60000, 300000, 1200000})
      .observe(result_.decided_at - start_time());
  obs_event("decide", obs::fnum("round", result_.round),
            obs::fnum("set_size", static_cast<std::int64_t>(result_.set_size)),
            obs::fnum("bottom", result_.is_bottom ? 1 : 0),
            obs::fnum("latency_ms", result_.decided_at - start_time()));
}

void ErngOptNode::send_final(std::uint32_t round) {
  final_sent_ = true;
  obs_event("final_sent", obs::fnum("round", round),
            obs::fnum("instances",
                      static_cast<std::int64_t>(instances_.size())));
  std::vector<Bytes> values;
  for (const auto& [initiator, inst] : instances_) {
    if (inst.has_value() && inst.value().size() == kRandSize) {
      values.push_back(inst.value());
    }
  }
  std::sort(values.begin(), values.end());
  Bytes set_bytes = serialize_set(values);
  Val v{MsgType::kFinal, config().self, my_seq(), round, set_bytes};
  broadcast_val(peers(), v);
  // A member's own set counts toward its quorum (Algorithm 6: SM ∪ {Mi}).
  final_votes_[set_bytes].insert(config().self);
  try_output(round);
}

void ErngOptNode::try_output(std::uint32_t round) {
  if (result_.done) return;
  for (const auto& [set_bytes, voters] : final_votes_) {
    if (voters.size() < accept_threshold_) continue;
    auto values = parse_set(set_bytes);
    if (!values) return;
    Bytes acc(kRandSize, 0);
    for (const Bytes& v : *values) {
      if (v.size() == kRandSize) xor_into(acc, v);
    }
    result_.done = true;
    result_.is_bottom = values->empty();
    result_.value = std::move(acc);
    result_.set_size = values->size();
    result_.round = round;
    result_.decided_at = trusted_time();
    record_decide();
    return;
  }
}

void ErngOptNode::on_val(NodeId from, const Val& val) {
  std::uint32_t round = current_round();
  switch (val.type) {
    case MsgType::kChosen: {
      // Valid only during round 1, from the sender itself, fresh (P5/P6).
      if (round != 1 || val.round != 1) break;
      if (val.initiator != from) break;
      if (expected_seq(from) != val.seq) break;
      if (fallback_ && from >= (2 * config().n + 2) / 3) break;
      s_chosen_.insert(from);
      break;
    }
    case MsgType::kInit:
    case MsgType::kEcho:
    case MsgType::kAck: {
      ErbInstance* inst = instance_for(val.initiator);
      if (inst == nullptr) break;
      perform(inst->on_val(from, val, round));
      if (inst->wants_halt()) halt_self();
      break;
    }
    case MsgType::kFinal: {
      if (final_round_ == 0 || val.round != final_round_) break;
      if (round != final_round_ && round != final_round_ + 1) break;
      if (!in_cluster(from) || val.initiator != from) break;
      if (expected_seq(from) != val.seq) break;
      final_votes_[val.payload].insert(from);
      try_output(round);
      break;
    }
    default:
      break;
  }
}

}  // namespace sgxp2p::protocol
