// Strawman broadcast / random-number protocol (Algorithm 1).
//
// The paper's motivating non-solution: INIT/ECHO flooding with no integrity,
// no freshness, no content hiding, no lockstep. Included so the test suite
// can demonstrate that attacks A1–A5 *succeed* here while the same attacks
// fail against ERB/ERNG — the paper's Section 2.3 in executable form.
// Byzantine variants subclass StrawmanNode and forge at will.
#pragma once

#include <optional>
#include <set>

#include "common/serde.hpp"
#include "protocol/plain_node.hpp"

namespace sgxp2p::protocol {

class StrawmanNode : public PlainNode {
 public:
  struct Result {
    bool decided = false;
    std::optional<Bytes> value;  // nullopt = ⊥
    std::uint32_t round = 0;
  };

  StrawmanNode(NodeId self, std::uint32_t n, std::uint32_t t, bool is_initiator,
               Bytes payload = {})
      : PlainNode(self, n, t),
        is_initiator_(is_initiator),
        payload_(std::move(payload)) {}

  [[nodiscard]] const Result& result() const { return result_; }

 protected:
  // Wire: u8 type (1=INIT, 2=ECHO) ‖ bytes payload. No auth, no rounds.
  static Bytes encode(std::uint8_t type, const Bytes& m) {
    BinaryWriter w;
    w.u8(type);
    w.bytes(m);
    return w.take();
  }

  void round_begin(std::uint32_t rnd) override;
  void on_message(NodeId from, ByteView data) override;

  /// Hook for byzantine subclasses: what to multicast as INIT.
  virtual void do_initiate();

  bool is_initiator_;
  Bytes payload_;
  std::optional<Bytes> m_;
  std::set<NodeId> s_m_;
  bool echo_pending_ = false;
  Result result_;
};

/// A2 in action: a byzantine initiator that equivocates — half the network
/// gets m0, the other half m1. Algorithm 1 has no defense; honest nodes
/// split (the strawman tests assert this split actually happens).
class EquivocatingStrawmanInitiator final : public StrawmanNode {
 public:
  EquivocatingStrawmanInitiator(NodeId self, std::uint32_t n, std::uint32_t t,
                                Bytes m0, Bytes m1)
      : StrawmanNode(self, n, t, true), m0_(std::move(m0)), m1_(std::move(m1)) {}

 protected:
  void do_initiate() override;
  void on_message(NodeId, ByteView) override {}  // ignores echoes

 private:
  Bytes m0_, m1_;
};

/// A2 as impersonation: with no message authenticity, a byzantine node can
/// simply emit its own INIT carrying a forged value in round 1 and race the
/// real initiator. Receivers cannot tell the two apart.
class ForgingStrawmanRelay final : public StrawmanNode {
 public:
  ForgingStrawmanRelay(NodeId self, std::uint32_t n, std::uint32_t t,
                       Bytes forged)
      : StrawmanNode(self, n, t, true, std::move(forged)) {}
  // Inherits do_initiate(): multicasts INIT(forged) at round 1, exactly like
  // a legitimate initiator would — the whole point of the attack.
};

}  // namespace sgxp2p::protocol
