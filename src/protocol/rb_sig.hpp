// RBsig — reliable broadcast with digital-signature chains (Algorithm 4,
// Appendix B; the Dolev–Strong [49] family).
//
// The classic PKI baseline: in round r a message is valid if it carries a
// chain of r distinct valid signatures beginning with the initiator's; a
// node relays each newly seen value with its own signature appended. After
// t+1 rounds a node accepts the unique value in S_m, or ⊥ when it saw
// equivocation. Tolerates byzantine nodes (they cannot forge honest
// signatures) at the cost the paper highlights: multi-signature messages —
// O(N³) bytes here versus ERB's O(N²) — and signature verification work.
//
// Standard relay optimization from [49]: a node relays at most two distinct
// values (two are already proof of equivocation), which keeps message
// complexity O(N²) while the chains keep byte complexity O(N³).
//
// Signatures are WOTS+Merkle (crypto/merkle.hpp); the PKI assumption is
// modeled by handing every node the vector of all public keys at build time.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "crypto/merkle.hpp"
#include "protocol/plain_node.hpp"

namespace sgxp2p::protocol {

class RbSigNode : public PlainNode {
 public:
  struct Result {
    bool decided = false;
    std::optional<Bytes> value;
    std::uint32_t round = 0;
  };

  RbSigNode(NodeId self, std::uint32_t n, std::uint32_t t, NodeId initiator,
            Bytes payload, ByteView signer_seed);

  /// PKI setup: public keys of all N nodes, indexed by id.
  void set_pki(std::vector<Bytes> public_keys) {
    public_keys_ = std::move(public_keys);
  }

  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] const Bytes& public_key() const {
    return signer_.public_key();
  }

 protected:
  void round_begin(std::uint32_t rnd) override;
  void on_message(NodeId from, ByteView data) override;

  struct SignedChain {
    Bytes value;
    std::vector<NodeId> ids;
    std::vector<Bytes> sigs;
  };
  static Bytes encode(const SignedChain& chain);
  static std::optional<SignedChain> decode(ByteView data);
  /// The transcript signature k covers: value ‖ ids[0..k].
  static Bytes transcript(const Bytes& value, const std::vector<NodeId>& ids,
                          std::size_t upto);
  [[nodiscard]] bool verify_chain(const SignedChain& chain,
                                  std::uint32_t rnd) const;

  NodeId initiator_;
  Bytes payload_;
  crypto::MerkleSigner signer_;
  std::vector<Bytes> public_keys_;

  std::set<Bytes> s_m_;
  std::size_t relayed_ = 0;                // ≤ 2 (equivocation proof cap)
  std::vector<SignedChain> relay_pending_; // multicast at next round begin
  Result result_;
};

/// Byzantine initiator that signs and sends two different values (A2 with a
/// real key — equivocation, not forgery). Unlike the strawman, RBsig
/// converges: every honest node ends with |S_m| ≥ 2 and outputs ⊥.
class EquivocatingRbSigInitiator final : public RbSigNode {
 public:
  EquivocatingRbSigInitiator(NodeId self, std::uint32_t n, std::uint32_t t,
                             Bytes m0, Bytes m1, ByteView signer_seed)
      : RbSigNode(self, n, t, self, m0, signer_seed), m1_(std::move(m1)) {}

 protected:
  void round_begin(std::uint32_t rnd) override;

 private:
  Bytes m1_;
};

}  // namespace sgxp2p::protocol
