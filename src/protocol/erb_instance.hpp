// ErbInstance — the Enclaved Reliable Broadcast state machine (Algorithm 2).
//
// Pure protocol logic with no I/O: events come in (round boundaries,
// received vals), send actions come out. This lets one enclave multiplex
// many concurrent instances — exactly what ERNG does (Algorithm 3 runs N of
// these; Algorithm 6 runs them inside a sampled cluster with its own
// participant set and thresholds).
//
// Faithful points, mapped to the paper:
//   - INIT/ECHO carry ⟨type, id_init, seq_init, m, rnd⟩; receivers check
//     rnd′ = rnd (P5, lockstep) and seq = seq_init (P6, freshness); a
//     mismatch is *treated as an omission* — ignored, not an error.
//   - Every valid INIT/ECHO is acknowledged with ⟨ACK, id_init, seq, H(val),
//     rnd⟩ to its sender.
//   - A node that multicast in round r and collected fewer than t ACKs by
//     the end of r halts (P4, halt-on-divergence) — surfaced as
//     wants_halt(); the owning enclave then churns itself out.
//   - ECHO is multicast at the start of the round after first receipt
//     ("Wait(rnd) then Multicast(…, rnd+1)").
//   - Accept m when |S_echo| ≥ N − t; accept ⊥ after instance round t + 2.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "protocol/wire.hpp"

namespace sgxp2p::protocol {

/// Distinct-member accumulator over participant ranks: a fixed bitmap plus
/// a count. The protocol only ever asks "how many distinct participants"
/// (|S_echo| and Nack against thresholds), never enumerates the members, so
/// this replaces the former std::set<NodeId> — at n = 1000 that set's ~n²
/// per-round node allocations and tree walks were the single hottest item
/// in the bench_scale profile.
class RankSet {
 public:
  RankSet() = default;
  explicit RankSet(std::size_t n) : bits_((n + 63) / 64, 0) {}

  /// Inserts rank `r` (< n); duplicate inserts are no-ops, like set::insert.
  void insert(std::size_t r) {
    std::uint64_t& word = bits_[r >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (r & 63);
    count_ += (word & mask) == 0 ? 1 : 0;
    word |= mask;
  }
  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t count_ = 0;
};

struct ErbConfig {
  NodeId self = kNoNode;
  InstanceId instance;                // initiator + expected seq (epoch)
  std::vector<NodeId> participants;   // the broadcast group, incl. self
  std::uint32_t t = 0;                // byzantine bound within the group
  std::uint32_t start_round = 1;      // global round of instance round 1
  std::uint32_t max_rounds = 0;       // instance rounds; 0 → t + 2
  bool is_initiator = false;
  Bytes init_payload;                 // m, when initiator
  // Ablation switch (DESIGN.md §4.1): with halt-on-divergence disabled the
  // protocol degenerates to passive timeout detection — byzantine nodes are
  // never churned and the traffic reduction of Fig. 3c disappears.
  bool enable_halt = true;
};

class ErbInstance {
 public:
  struct Send {
    NodeId to;
    Val val;
  };
  /// Output actions of one event. Multicasts are returned as one Val per
  /// group-wide message (the owner fans them out via broadcast_val, sealing
  /// one serialization per link) instead of |group| copies; ACKs stay
  /// targeted unicasts. Consumers must emit multicasts before unicasts —
  /// that reproduces the per-peer order the flat vector used to carry.
  struct Sends {
    std::vector<Val> multicasts;
    std::vector<Send> unicasts;
    /// Group the multicasts address (the instance's sorted participants,
    /// self included — senders skip self). Valid as long as the instance.
    const std::vector<NodeId>* group = nullptr;
    /// Causal token (a trace span id) for deferred actions: an ECHO emitted
    /// at a round boundary was really triggered by the INIT/ECHO delivery
    /// one round earlier, and the owner scopes the sends to that delivery so
    /// the critical path crosses the "Wait(rnd)" gap. 0 = no deferral — the
    /// sends belong to whatever event is being handled right now.
    std::uint64_t cause = 0;

    [[nodiscard]] bool empty() const {
      return multicasts.empty() && unicasts.empty();
    }
  };

  explicit ErbInstance(ErbConfig config);

  /// Round-boundary event (global round). Order of effects: ACK-shortfall
  /// check for the previous round's multicast (may set wants_halt), then the
  /// scheduled ECHO / initial INIT multicast, then the ⊥ timeout.
  Sends on_round_begin(std::uint32_t global_round);

  /// A val for this instance arrived from `from` during `global_round`.
  Sends on_val(NodeId from, const Val& val, std::uint32_t global_round);

  // ----- status -----
  [[nodiscard]] bool accepted() const { return accepted_; }
  [[nodiscard]] bool has_value() const { return accepted_ && value_.has_value(); }
  /// The accepted m; only meaningful when has_value().
  [[nodiscard]] const Bytes& value() const { return *value_; }
  /// Instance round at which the decision was made.
  [[nodiscard]] std::uint32_t accept_round() const { return accept_round_; }
  /// P4 violation detected: the owner must Halt the whole node.
  [[nodiscard]] bool wants_halt() const { return wants_halt_; }
  [[nodiscard]] const ErbConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t echo_count() const { return s_echo_.size(); }

 private:
  [[nodiscard]] std::uint32_t instance_round(std::uint32_t global) const;
  [[nodiscard]] bool is_participant(NodeId id) const;
  /// Rank of `id` in the sorted participant list, or -1 if not a member.
  [[nodiscard]] int participant_rank(NodeId id) const;
  /// Appends a group-wide multicast of `val` to `out` and registers the
  /// pending-ACK expectation for `global_round`.
  void multicast(Val val, std::uint32_t global_round, Sends& out);
  void maybe_accept(std::uint32_t instance_rnd);

  ErbConfig cfg_;
  std::uint32_t max_rounds_;
  std::uint32_t ack_threshold_;
  std::uint32_t accept_threshold_;
  int self_rank_ = -1;
  int initiator_rank_ = -1;
  bool contiguous_ = false;  // participants are first_ .. first_ + n − 1
  NodeId first_ = 0;
  Bytes hash_scratch_;       // serialize-for-hash reuse (one per ACK)

  std::optional<Bytes> m_;              // m̄, the stored message
  RankSet s_echo_;                      // S_echo (distinct count only)
  std::optional<std::uint32_t> echo_due_round_;  // multicast ECHO at this instance round
  std::uint64_t echo_cause_ = 0;        // span of the delivery that armed it

  // Pending multicast awaiting ACKs: (global round it was sent in, the
  // H(val) receivers will echo back, distinct ackers so far).
  struct PendingAck {
    std::uint32_t round = 0;
    Bytes expected_hash;
    RankSet ackers;
  };
  std::optional<PendingAck> pending_ack_;

  bool accepted_ = false;
  std::optional<Bytes> value_;
  std::uint32_t accept_round_ = 0;
  bool wants_halt_ = false;
};

}  // namespace sgxp2p::protocol
