// RBearly — early-stopping reliable broadcast in the general-omission model
// (Algorithm 5, Appendix B; Perry–Toueg [82]).
//
// The omission-model baseline the paper contrasts ERB with: every node
// broadcasts its state EVERY round ('?' unknown / a value / ⊥) so that
// peers can passively detect omission faults via the QUIET set, stopping by
// round min{f+2, t+1}. The price is the per-round all-to-all liveness
// broadcast — O(N³) total messages versus ERB's O(N²), which is precisely
// the saving the paper attributes to active ACK-based detection (P4).
//
// Faults are injected with PlainNode::set_send_filter (omission only — this
// protocol is *not* byzantine-tolerant, which test RbEarly.ForgeryBreaksIt
// demonstrates).
#pragma once

#include <map>
#include <optional>
#include <set>

#include "protocol/plain_node.hpp"

namespace sgxp2p::protocol {

class RbEarlyNode : public PlainNode {
 public:
  struct Result {
    bool decided = false;
    std::optional<Bytes> value;
    std::uint32_t round = 0;
  };

  RbEarlyNode(NodeId self, std::uint32_t n, std::uint32_t t, NodeId initiator,
              Bytes payload = {})
      : PlainNode(self, n, t), initiator_(initiator), payload_(std::move(payload)) {}

  [[nodiscard]] const Result& result() const { return result_; }

 protected:
  void round_begin(std::uint32_t rnd) override;
  void on_message(NodeId from, ByteView data) override;

 private:
  enum class State : std::uint8_t { kUnknown = 0, kValue = 1, kBottom = 2 };

  Bytes encode(State state, const Bytes& value, std::uint32_t rnd) const;

  NodeId initiator_;
  Bytes payload_;

  State state_ = State::kUnknown;
  Bytes value_;
  std::set<NodeId> quiet_;
  // Arrivals of the current round: sender → (state, value).
  std::map<NodeId, std::pair<State, Bytes>> inbox_;
  std::uint32_t inbox_round_ = 1;
  bool broadcast_decision_pending_ = false;
  Result result_;
};

}  // namespace sgxp2p::protocol
