#include "protocol/eba.hpp"

#include <numeric>

namespace sgxp2p::protocol {

EbaNode::EbaNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                 sgx::EnclaveHostIface& host, PeerConfig config,
                 const sgx::SimIAS& ias, Bytes input)
    : PeerEnclave(platform, cpu, EbaNode::program(), host, config, ias),
      input_(std::move(input)) {}

void EbaNode::on_protocol_start() {
  ErbConfig cfg;
  cfg.self = config().self;
  cfg.instance = InstanceId{config().self, my_seq()};
  cfg.participants.resize(config().n);
  std::iota(cfg.participants.begin(), cfg.participants.end(), NodeId{0});
  cfg.t = config().t;
  cfg.start_round = 1;
  cfg.is_initiator = true;
  cfg.init_payload = input_;
  instances_.emplace(config().self, ErbInstance(std::move(cfg)));
}

ErbInstance& EbaNode::instance_for(NodeId initiator) {
  auto it = instances_.find(initiator);
  if (it == instances_.end()) {
    ErbConfig cfg;
    cfg.self = config().self;
    cfg.instance = InstanceId{initiator, expected_seq(initiator).value_or(0)};
    cfg.participants.resize(config().n);
    std::iota(cfg.participants.begin(), cfg.participants.end(), NodeId{0});
    cfg.t = config().t;
    cfg.start_round = 1;
    cfg.is_initiator = false;
    it = instances_.emplace(initiator, ErbInstance(std::move(cfg))).first;
  }
  return it->second;
}

void EbaNode::perform(const ErbInstance::Sends& sends) {
  // A deferred batch (the scheduled ECHO) is causally the child of last
  // round's delivery, not of the round tick that flushed it.
  obs::TraceRecorder::Scope causal(sends.cause);
  // Multicasts first — that is the order the old per-peer vector carried.
  for (const Val& v : sends.multicasts) broadcast_val(*sends.group, v);
  for (const auto& send : sends.unicasts) send_val(send.to, send.val);
}

void EbaNode::finalize(std::uint32_t round) {
  if (result_.done) return;
  result_.done = true;
  result_.round = round;
  result_.decided_at = trusted_time();
  // Majority over the common delivered vector; deterministic tie-break.
  std::map<Bytes, std::size_t> tally;
  for (const auto& [initiator, inst] : instances_) {
    if (inst.has_value()) ++tally[inst.value()];
  }
  std::size_t best = 0;
  for (const auto& [value, count] : tally) {
    result_.delivered += count;
    if (count > best) {  // map iteration is ordered: first max = smallest
      best = count;
      result_.decision = value;
      result_.support = count;
    }
  }
}

void EbaNode::on_round_begin(std::uint32_t round) {
  for (auto& [initiator, inst] : instances_) {
    perform(inst.on_round_begin(round));
    if (inst.wants_halt()) {
      halt_self();
      return;
    }
  }
  if (round > config().t + 2) finalize(round);
}

void EbaNode::on_val(NodeId from, const Val& val) {
  if (val.initiator >= config().n) return;
  ErbInstance& inst = instance_for(val.initiator);
  perform(inst.on_val(from, val, current_round()));
  if (inst.wants_halt()) halt_self();
}

}  // namespace sgxp2p::protocol
