// RosterNode — dynamic membership via ERB (Appendix G, assumption S1).
//
// The paper: "whenever a node wants to join P, the joining node contacts
// another neighbor node and communicates both its sequence number and
// identifier. The contacted node will use ERB to reliably broadcast the
// pair to all peers in P and then send the joining peer a message
// containing all existing identifiers of P."
//
// Realization: time is cut into fixed windows of W = t_max + 2 rounds. In
// each window at most one join proceeds:
//   round w·W+1   joiner → sponsor: JOIN⟨joiner id, joiner's seq₀⟩
//   round w·W+2   sponsor initiates an ERB among the CURRENT roster with
//                 payload (joiner, seq₀); the instance runs inside the
//                 window (roster-sized thresholds)
//   window end    members that accepted add the joiner to their roster and
//                 sequence table; the sponsor sends WELCOME⟨roster⟩ and the
//                 joiner becomes a member. All nodes advance sequence
//                 numbers (P6 across instances).
//
// Because admission is an ERB decision, every member ends each window with
// the SAME roster — later joins then run over the grown roster, which the
// tests verify. A crashed/byzantine sponsor merely makes the join fail (the
// joiner retries with another sponsor in a later window); it cannot split
// the roster.
//
// Recovery extension (src/recovery/): a crashed-and-relaunched member is
// re-admitted through the same window machinery. A plan entry with
// `rejoin = true` schedules a REJOIN: the relaunched node re-announces a
// sequence number to its sponsor, the sponsor ERB-broadcasts the
// (rejoiner, seq) record over the roster, and members refresh their
// sequence-table entry for the rejoiner instead of growing the roster. The
// closing WELCOME carries the roster *and* the current sequence table, so a
// rejoiner whose checkpoint was lost (or rejected as stale) still converges
// to the members' P6 state. Consecutive rejoin entries with different
// sponsors realize retry-with-backoff: a window whose sponsor is dead
// simply closes empty and the next entry retries.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "protocol/erb_instance.hpp"
#include "protocol/peer_enclave.hpp"

namespace sgxp2p::protocol {

struct JoinPlanEntry {
  NodeId joiner = kNoNode;
  NodeId sponsor = kNoNode;
  bool rejoin = false;  // re-admission of an existing member after a crash
};

class RosterNode : public PeerEnclave {
 public:
  /// `initial_roster` must be the same on every node (public knowledge,
  /// like the paper's identifier list); `plan[w]` is window w's join.
  RosterNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
             sgx::EnclaveHostIface& host, PeerConfig config,
             const sgx::SimIAS& ias, std::vector<NodeId> initial_roster,
             std::vector<JoinPlanEntry> plan);

  [[nodiscard]] const std::vector<NodeId>& roster() const { return roster_; }
  [[nodiscard]] bool is_member() const { return is_member_; }
  /// Joins admitted so far, in admission order.
  [[nodiscard]] const std::vector<NodeId>& admitted() const {
    return admitted_;
  }
  /// Window length in rounds.
  [[nodiscard]] std::uint32_t window() const { return config().t + 2; }
  [[nodiscard]] static sgx::ProgramIdentity program() {
    return {"roster", "1.0"};
  }
  /// True while a relaunched node is still awaiting re-admission.
  [[nodiscard]] bool rejoin_pending() const { return rejoin_pending_; }

 protected:
  void on_round_begin(std::uint32_t round) override;
  void on_val(NodeId from, const Val& val) override;

  // ----- checkpoint / recovery support (src/recovery/) -----

  /// Serializes the membership view (roster, member bit, admission history,
  /// current window index). Paired with export_core_state() in checkpoints.
  [[nodiscard]] Bytes export_membership_state() const;
  bool import_membership_state(ByteView data);
  /// Relaunch with a valid checkpoint: state is restored, but announce the
  /// own sequence through a REJOIN window so members refresh their entry.
  void begin_rejoin() { rejoin_pending_ = true; }
  /// Relaunch without a usable checkpoint: drop membership and re-enter
  /// through the join machinery as a fresh joiner (WELCOME resupplies the
  /// roster and sequence table).
  void reset_to_fresh_joiner();

 private:
  [[nodiscard]] bool in_roster(NodeId id) const;
  [[nodiscard]] std::size_t window_of(std::uint32_t round) const {
    return (round - 1) / window();
  }
  [[nodiscard]] std::uint32_t window_start(std::size_t w) const {
    return static_cast<std::uint32_t>(w) * window() + 1;
  }
  [[nodiscard]] std::uint32_t roster_t() const {
    return roster_.empty() ? 0
                           : (static_cast<std::uint32_t>(roster_.size()) - 1) /
                                 2;
  }
  ErbInstance* join_instance(NodeId sponsor, std::size_t w);
  void perform(const ErbInstance::Sends& sends);
  void close_window(std::size_t w);

  std::vector<NodeId> roster_;
  bool is_member_;
  std::vector<JoinPlanEntry> plan_;
  std::vector<NodeId> admitted_;

  std::size_t current_window_ = 0;
  std::unique_ptr<ErbInstance> instance_;   // this window's join broadcast
  std::optional<std::pair<NodeId, std::uint64_t>> pending_join_;  // sponsor's
  bool welcome_due_ = false;                // sponsor: send WELCOME at close
  NodeId welcome_to_ = kNoNode;
  bool rejoin_pending_ = false;             // relaunched, awaiting WELCOME
};

}  // namespace sgxp2p::protocol
