// RecoveryCoordinator — crash → checkpoint → relaunch → re-attest → rejoin.
//
// Scripts a single crash/recovery episode on a sim::Testbed of
// RecoverableNodes, driven from the testbed's round hook so every step
// lands at a deterministic round boundary:
//
//   every k rounds   each live member seals a checkpoint into its host's
//                    (untrusted) CheckpointStore
//   crash_round      the victim's enclave is destroyed — all in-enclave
//                    state is gone; the host and its store survive
//   recover_round    a fresh enclave is launched, asks its host for the
//                    sealed checkpoint (the host's Strategy answers — this
//                    is where StaleSealReplayStrategy bites), restores or
//                    falls back to fresh-joiner status, and re-runs the
//                    attested handshake with every live peer (the peers'
//                    replay windows have advanced; restored session keys
//                    are unusable by design)
//   rejoin window    the membership plan's rejoin/join entries re-admit the
//                    node; the coordinator records when re-admission lands
//
// Everything observable is exported through recovery.* metrics and
// "recovery" trace events, so two same-seed runs emit identical timelines.
#pragma once

#include <memory>
#include <vector>

#include "net/testbed.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/recoverable_node.hpp"

namespace sgxp2p::recovery {

struct RecoveryPlan {
  NodeId victim = kNoNode;
  std::uint32_t crash_round = 0;    // kill at this boundary (0 = never)
  std::uint32_t recover_round = 0;  // relaunch at this boundary (0 = never)
  std::uint32_t checkpoint_interval = 2;  // rounds between snapshots
};

class RecoveryCoordinator {
 public:
  /// `factory` rebuilds a RecoverableNode for the relaunch; it must produce
  /// the same program + plan as the original build (public knowledge).
  RecoveryCoordinator(sim::Testbed& bed, sim::Testbed::EnclaveFactory factory,
                      RecoveryPlan plan);

  /// Hooks the testbed's round boundary. Call after Testbed::build().
  void install();

  [[nodiscard]] const CheckpointStore& store(NodeId id) const {
    return stores_.at(id);
  }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] bool relaunched() const { return relaunched_; }
  /// Outcome of the restore attempt at recover_round.
  [[nodiscard]] RestoreOutcome restore_outcome() const { return outcome_; }
  /// True when the node was re-admitted as a fresh joiner (stale/lost seal).
  [[nodiscard]] bool used_fresh_fallback() const { return fallback_; }
  /// True once the victim is a member again with no rejoin pending.
  [[nodiscard]] bool rejoin_complete() const { return rejoined_; }
  [[nodiscard]] std::uint32_t rejoin_round() const { return rejoin_round_; }

 private:
  void on_round(std::uint32_t round);
  void crash(std::uint32_t round);
  void recover(std::uint32_t round);

  sim::Testbed* bed_;
  sim::Testbed::EnclaveFactory factory_;
  RecoveryPlan plan_;
  std::vector<CheckpointStore> stores_;
  std::vector<std::unique_ptr<CheckpointManager>> managers_;
  RestoreOutcome outcome_ = RestoreOutcome::kInvalid;
  bool crashed_ = false;
  bool relaunched_ = false;
  bool fallback_ = false;
  bool rejoined_ = false;
  std::uint32_t rejoin_round_ = 0;
};

}  // namespace sgxp2p::recovery
