// Host-side checkpoint storage + the periodic checkpoint driver.
//
// The CheckpointStore is UNTRUSTED state: it models the disk of the host
// OS. It keeps every sealed blob the enclave ever produced (a real host
// could; assuming it only keeps the latest would hide the rollback attack
// this subsystem exists to defeat). At restore time the blob handed back is
// chosen by the host's adversary Strategy — honest hosts return the newest,
// StaleSealReplayStrategy returns the oldest.
//
// The CheckpointManager is the harness-side scheduler: at every round
// boundary it asks the enclave to seal a snapshot when the interval is due.
// In real SGX this would be the enclave's own timer; here the testbed's
// round hook drives it so checkpoints land deterministically.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adversary/strategy.hpp"
#include "common/bytes.hpp"
#include "obs/metrics.hpp"
#include "recovery/recoverable_node.hpp"

namespace sgxp2p::recovery {

/// Registry-backed counters under the `recovery.*` namespace, cached per
/// thread and keyed on MetricsRegistry::current().id() so isolated per-run
/// registries resolve their own instruments.
struct RecoveryMetrics {
  obs::Counter* checkpoints = nullptr;        // snapshots sealed
  obs::Counter* checkpoint_bytes = nullptr;   // total sealed bytes
  obs::Counter* restores_ok = nullptr;        // checkpoints adopted at relaunch
  obs::Counter* rollback_detected = nullptr;  // stale blobs caught
  obs::Counter* restore_invalid = nullptr;    // unseal/parse failures
  obs::Counter* fresh_fallbacks = nullptr;    // re-admitted as fresh joiners
  obs::Counter* crashes = nullptr;            // enclaves destroyed
  obs::Counter* relaunches = nullptr;         // enclaves brought back
  obs::Counter* rejoins = nullptr;            // re-admissions completed
  static RecoveryMetrics& get();
};

class CheckpointStore {
 public:
  void store(Bytes sealed) { history_.push_back(std::move(sealed)); }
  [[nodiscard]] const std::vector<Bytes>& history() const { return history_; }
  [[nodiscard]] bool empty() const { return history_.empty(); }

  /// Restore request, answered by the host's (possibly byzantine) strategy.
  [[nodiscard]] std::optional<Bytes> fetch(
      adversary::Strategy& strategy) const {
    return strategy.on_restore(history_);
  }

 private:
  std::vector<Bytes> history_;
};

class CheckpointManager {
 public:
  /// Seals a snapshot of `node` into `store` every `interval_rounds`. Both
  /// references must outlive the manager (the coordinator rebuilds the
  /// manager whenever the enclave object is replaced).
  CheckpointManager(RecoverableNode& node, CheckpointStore& store,
                    std::uint32_t interval_rounds)
      : node_(&node), store_(&store), interval_(interval_rounds) {}

  /// Round-boundary driver.
  void on_round(std::uint32_t round) {
    if (interval_ == 0 || round % interval_ != 0) return;
    if (!node_->started() || node_->halted() || !node_->is_member()) return;
    store_->store(node_->take_checkpoint());
  }

 private:
  RecoverableNode* node_;
  CheckpointStore* store_;
  std::uint32_t interval_;
};

}  // namespace sgxp2p::recovery
