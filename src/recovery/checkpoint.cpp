#include "recovery/checkpoint.hpp"

namespace sgxp2p::recovery {

RecoveryMetrics& RecoveryMetrics::get() {
  thread_local RecoveryMetrics metrics;
  thread_local std::uint64_t bound_registry_id = 0;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
  if (reg.id() != bound_registry_id) {
    metrics.checkpoints = &reg.counter("recovery.checkpoints");
    metrics.checkpoint_bytes = &reg.counter("recovery.checkpoint_bytes");
    metrics.restores_ok = &reg.counter("recovery.restores_ok");
    metrics.rollback_detected = &reg.counter("recovery.rollback_detected");
    metrics.restore_invalid = &reg.counter("recovery.restore_invalid");
    metrics.fresh_fallbacks = &reg.counter("recovery.fresh_fallbacks");
    metrics.crashes = &reg.counter("recovery.crashes");
    metrics.relaunches = &reg.counter("recovery.relaunches");
    metrics.rejoins = &reg.counter("recovery.rejoins");
    bound_registry_id = reg.id();
  }
  return metrics;
}

}  // namespace sgxp2p::recovery
