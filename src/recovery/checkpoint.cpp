#include "recovery/checkpoint.hpp"

namespace sgxp2p::recovery {

RecoveryMetrics& RecoveryMetrics::get() {
  auto& reg = obs::MetricsRegistry::global();
  static RecoveryMetrics metrics{reg.counter("recovery.checkpoints"),
                                 reg.counter("recovery.checkpoint_bytes"),
                                 reg.counter("recovery.restores_ok"),
                                 reg.counter("recovery.rollback_detected"),
                                 reg.counter("recovery.restore_invalid"),
                                 reg.counter("recovery.fresh_fallbacks"),
                                 reg.counter("recovery.crashes"),
                                 reg.counter("recovery.relaunches"),
                                 reg.counter("recovery.rejoins")};
  return metrics;
}

}  // namespace sgxp2p::recovery
