#include "recovery/recoverable_node.hpp"

#include "common/serde.hpp"
#include "obs/trace.hpp"
#include "recovery/checkpoint.hpp"

namespace sgxp2p::recovery {

namespace {
constexpr std::size_t kReseedBytes = 32;
}  // namespace

Bytes RecoverableNode::take_checkpoint() {
  BinaryWriter w;
  w.str("sgxp2p-ckpt-v1");
  // Anti-rollback version: the platform counter survives the enclave, so
  // after a crash only the newest blob matches counter_read().
  w.u64(monotonic_increment());
  w.u32(current_round());
  w.bytes(read_rand().generate(kReseedBytes));
  w.bytes(export_core_state());
  w.bytes(export_membership_state());
  Bytes sealed = seal(w.take());
  auto& m = RecoveryMetrics::get();
  m.checkpoints->inc();
  m.checkpoint_bytes->inc(sealed.size());
  obs::trace_event(trusted_time(), config().self, "recovery", "checkpoint",
                   obs::fnum("round", current_round()),
                   obs::fnum("counter",
                             static_cast<std::int64_t>(monotonic_read())),
                   obs::fnum("bytes", static_cast<std::int64_t>(sealed.size())));
  return sealed;
}

RestoreOutcome RecoverableNode::restore_checkpoint(ByteView sealed) {
  auto& m = RecoveryMetrics::get();
  auto plain = unseal(sealed);
  if (!plain) {
    m.restore_invalid->inc();
    return RestoreOutcome::kInvalid;
  }
  BinaryReader r(*plain);
  if (r.str() != "sgxp2p-ckpt-v1") {
    m.restore_invalid->inc();
    return RestoreOutcome::kInvalid;
  }
  std::uint64_t counter = r.u64();
  std::uint32_t round = r.u32();
  Bytes reseed = r.bytes();
  Bytes core = r.bytes();
  Bytes membership = r.bytes();
  if (!r.done() || reseed.size() != kReseedBytes) {
    m.restore_invalid->inc();
    return RestoreOutcome::kInvalid;
  }
  if (counter != monotonic_read()) {
    // The host handed back a blob other than the newest — rollback attempt.
    m.rollback_detected->inc();
    obs::trace_event(trusted_time(), config().self, "recovery",
                     "rollback_detected", obs::fnum("blob_counter", counter),
                     obs::fnum("counter",
                               static_cast<std::int64_t>(monotonic_read())));
    return RestoreOutcome::kStale;
  }
  if (!import_core_state(core) || !import_membership_state(membership)) {
    m.restore_invalid->inc();
    return RestoreOutcome::kInvalid;
  }
  // Forward secrecy across the crash: mix the checkpointed material into the
  // fresh per-launch DRBG rather than replacing it.
  read_rand().reseed(reseed);
  // The restored sequence table is valid, but members must still refresh
  // this node's entry through a REJOIN window (and the WELCOME re-syncs us).
  begin_rejoin();
  m.restores_ok->inc();
  obs::trace_event(trusted_time(), config().self, "recovery", "restore_ok",
                   obs::fnum("ckpt_round", round),
                   obs::fnum("counter", static_cast<std::int64_t>(counter)));
  return RestoreOutcome::kRestored;
}

}  // namespace sgxp2p::recovery
