// RecoverableNode — a RosterNode that can crash and come back.
//
// Checkpoints (paper Section 4, P6 restart note + SGX monotonic counters):
// the enclave periodically seals a versioned snapshot of everything a
// relaunch needs to continue the lockstep execution — its own and its
// peers' instance sequence numbers (P6), the per-peer session keys and
// replay windows (P2/P6), the membership view, and DRBG reseed material.
// The snapshot is handed to the untrusted host, which is free to store it,
// lose it, or keep every version it ever saw.
//
// Rollback protection: each take_checkpoint() increments the platform
// monotonic counter for this (CPU, program) and binds the NEW counter value
// into the sealed blob. The counter survives enclave destruction, so at
// restore time exactly one blob — the latest — carries the current counter
// value. A byzantine host replaying an older sealed blob produces a blob
// that unseals fine but fails the counter comparison: the relaunch reports
// kStale, refuses the state, and falls back to fresh re-admission through
// the join machinery (reset_to_fresh_joiner), where the WELCOME resupplies
// the roster and sequence table.
#pragma once

#include "protocol/membership.hpp"

namespace sgxp2p::recovery {

enum class RestoreOutcome {
  kRestored,  // state adopted; node continues as a member (REJOIN confirms)
  kStale,     // monotonic counter mismatch — rollback attempt detected
  kInvalid,   // unseal/parse failure (truncated, forged, wrong enclave)
};

class RecoverableNode final : public protocol::RosterNode {
 public:
  using RosterNode::RosterNode;

  /// Seals a snapshot of all protocol-critical state for host-side storage.
  /// Increments the monotonic counter and binds the new value in.
  [[nodiscard]] Bytes take_checkpoint();

  /// Unseals and validates a host-provided checkpoint. On kRestored the
  /// state is adopted and the node is flagged for a REJOIN announcement;
  /// on any other outcome the node is untouched — call recover_fresh().
  RestoreOutcome restore_checkpoint(ByteView sealed);

  /// Fallback when no valid checkpoint exists: drop to fresh-joiner status
  /// and re-enter through a scheduled join window.
  void recover_fresh() { reset_to_fresh_joiner(); }
};

}  // namespace sgxp2p::recovery
