#include "recovery/coordinator.hpp"

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace sgxp2p::recovery {

namespace {
RecoverableNode* as_recoverable(sim::Testbed& bed, NodeId id) {
  if (!bed.has_enclave(id)) return nullptr;
  return dynamic_cast<RecoverableNode*>(&bed.enclave(id));
}
}  // namespace

RecoveryCoordinator::RecoveryCoordinator(sim::Testbed& bed,
                                         sim::Testbed::EnclaveFactory factory,
                                         RecoveryPlan plan)
    : bed_(&bed), factory_(std::move(factory)), plan_(plan) {
  stores_.resize(bed.config().n);
  managers_.resize(bed.config().n);
}

void RecoveryCoordinator::install() {
  for (NodeId id = 0; id < bed_->config().n; ++id) {
    auto* node = as_recoverable(*bed_, id);
    if (node != nullptr) {
      managers_[id] = std::make_unique<CheckpointManager>(
          *node, stores_[id], plan_.checkpoint_interval);
    }
  }
  bed_->set_round_hook([this](std::uint32_t round) { on_round(round); });
}

void RecoveryCoordinator::on_round(std::uint32_t round) {
  if (round == plan_.crash_round && !crashed_) crash(round);
  if (round == plan_.recover_round && crashed_ && !relaunched_) recover(round);
  for (auto& manager : managers_) {
    if (manager) manager->on_round(round);
  }
  // Re-admission lands via WELCOME mid-round; detect it at the boundary.
  if (relaunched_ && !rejoined_) {
    auto* node = as_recoverable(*bed_, plan_.victim);
    if (node != nullptr && node->is_member() && !node->rejoin_pending()) {
      rejoined_ = true;
      rejoin_round_ = round;
      RecoveryMetrics::get().rejoins->inc();
      obs::trace_event(bed_->simulator().now(), plan_.victim, "recovery",
                       "rejoin_complete", obs::fnum("round", round),
                       obs::fnum("fallback", fallback_ ? 1 : 0));
    }
  }
}

void RecoveryCoordinator::crash(std::uint32_t round) {
  managers_[plan_.victim].reset();
  bed_->kill_enclave(plan_.victim);
  crashed_ = true;
  RecoveryMetrics::get().crashes->inc();
  obs::trace_event(bed_->simulator().now(), plan_.victim, "recovery", "crash",
                   obs::fnum("round", round));
}

void RecoveryCoordinator::recover(std::uint32_t round) {
  auto& m = RecoveryMetrics::get();
  bed_->relaunch_enclave(
      plan_.victim, factory_, [&](protocol::PeerEnclave& enclave) {
        auto* node = dynamic_cast<RecoverableNode*>(&enclave);
        CHECK_MSG(node != nullptr,
                  "RecoveryCoordinator: factory must build a RecoverableNode");
        // Restore: the sealed blob comes back through the host's strategy —
        // an honest OS returns the newest, a byzantine one whatever it likes.
        auto blob =
            stores_[plan_.victim].fetch(bed_->host(plan_.victim).strategy());
        outcome_ = blob ? node->restore_checkpoint(*blob)
                        : RestoreOutcome::kInvalid;
        if (outcome_ != RestoreOutcome::kRestored) {
          node->recover_fresh();
          fallback_ = true;
          m.fresh_fallbacks->inc();
          obs::trace_event(bed_->simulator().now(), plan_.victim, "recovery",
                           "fresh_fallback", obs::fnum("round", round),
                           obs::fstr("cause",
                                     outcome_ == RestoreOutcome::kStale
                                         ? "stale_seal"
                                         : "no_valid_seal"));
        }
        // Re-attestation with every live peer, harness-mediated like the
        // original setup phase. Fresh session keys replace any restored
        // ones: the peers' replay windows moved on while we were down.
        if (bed_->config().mode == protocol::ChannelMode::kAttested) {
          Bytes hello = node->handshake_blob();
          for (NodeId id = 0; id < bed_->config().n; ++id) {
            if (id == plan_.victim || !bed_->has_enclave(id)) continue;
            auto& peer = bed_->enclave(id);
            bool ok = peer.accept_handshake(hello) &&
                      node->accept_handshake(peer.handshake_blob());
            CHECK_MSG(ok, "RecoveryCoordinator: re-attestation failed");
          }
        } else {
          for (NodeId id = 0; id < bed_->config().n; ++id) {
            if (id != plan_.victim) node->install_fast_link(id);
          }
        }
      });
  relaunched_ = true;
  m.relaunches->inc();
  obs::trace_event(bed_->simulator().now(), plan_.victim, "recovery",
                   "relaunch", obs::fnum("round", round),
                   obs::fnum("restored",
                             outcome_ == RestoreOutcome::kRestored ? 1 : 0));
  auto* node = as_recoverable(*bed_, plan_.victim);
  managers_[plan_.victim] = std::make_unique<CheckpointManager>(
      *node, stores_[plan_.victim], plan_.checkpoint_interval);
}

}  // namespace sgxp2p::recovery
