// Statistical randomness tests (FIPS 140-2 style smoke battery).
//
// Used to check empirically what Theorem 5.1 proves: ERNG/beacon outputs
// under active adversaries remain indistinguishable-from-uniform by simple
// statistics. These are the classic monobit, byte chi-square, runs, and
// serial-correlation tests with generous thresholds suited to the sample
// sizes the test suite can afford — sanity instruments, not NIST SP 800-22.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/bytes.hpp"

namespace sgxp2p::stats {

/// Fraction of one bits (≈ 0.5 for uniform data).
inline double monobit_fraction(ByteView data) {
  if (data.empty()) return 0.5;
  std::uint64_t ones = 0;
  for (std::uint8_t b : data) {
    ones += static_cast<std::uint64_t>(__builtin_popcount(b));
  }
  return static_cast<double>(ones) / (static_cast<double>(data.size()) * 8.0);
}

/// Chi-square statistic of the byte histogram against uniform; for uniform
/// data E[stat] ≈ 255 with σ ≈ √510 ≈ 22.6.
inline double byte_chi_square(ByteView data) {
  if (data.empty()) return 0.0;
  std::uint64_t counts[256] = {};
  for (std::uint8_t b : data) ++counts[b];
  double expected = static_cast<double>(data.size()) / 256.0;
  double stat = 0.0;
  for (std::uint64_t c : counts) {
    double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

/// Number of bit runs divided by the expected count 2·n·p·(1−p)+1 ≈ n/2
/// (ratio ≈ 1 for uniform data).
inline double runs_ratio(ByteView data) {
  if (data.size() < 2) return 1.0;
  std::uint64_t runs = 1;
  int prev = data[0] & 1;
  std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
  for (std::uint64_t i = 1; i < bits; ++i) {
    int bit = (data[i / 8] >> (i % 8)) & 1;
    if (bit != prev) ++runs;
    prev = bit;
  }
  double expected = static_cast<double>(bits) / 2.0 + 1.0;
  return static_cast<double>(runs) / expected;
}

/// Lag-1 byte serial correlation (≈ 0 for uniform data).
inline double serial_correlation(ByteView data) {
  const std::size_t n = data.size();
  if (n < 2) return 0.0;
  double sum_x = 0, sum_x2 = 0, sum_xy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double x = data[i];
    double y = data[(i + 1) % n];
    sum_x += x;
    sum_x2 += x * x;
    sum_xy += x * y;
  }
  double nd = static_cast<double>(n);
  double num = nd * sum_xy - sum_x * sum_x;
  double den = nd * sum_x2 - sum_x * sum_x;
  return den == 0.0 ? 0.0 : num / den;
}

struct RandVerdict {
  double monobit = 0;
  double chi_square = 0;
  double runs = 0;
  double correlation = 0;
  bool pass = false;
};

/// Applies the whole battery with thresholds loose enough for a few KiB of
/// sample: monobit within 2%, chi-square below 400, runs ratio within 5%,
/// |correlation| below 0.1.
inline RandVerdict randomness_battery(ByteView data) {
  RandVerdict v;
  v.monobit = monobit_fraction(data);
  v.chi_square = byte_chi_square(data);
  v.runs = runs_ratio(data);
  v.correlation = serial_correlation(data);
  v.pass = std::abs(v.monobit - 0.5) < 0.02 && v.chi_square < 400.0 &&
           std::abs(v.runs - 1.0) < 0.05 && std::abs(v.correlation) < 0.1;
  return v;
}

}  // namespace sgxp2p::stats
