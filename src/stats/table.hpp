// Table / CSV emission and scaling-fit helpers for the benchmark harness.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace sgxp2p::stats {

/// Column-aligned text table (markdown-ish), printed to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}
inline std::string fmt_int(std::uint64_t v) { return std::to_string(v); }

/// Least-squares slope of log2(y) against log2(x): the measured scaling
/// exponent (≈2 for quadratic traffic, ≈3 for cubic).
inline double loglog_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    double lx = std::log2(x[i]);
    double ly = std::log2(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  double denom = static_cast<double>(n) * sxx - sx * sx;
  if (n < 2 || std::abs(denom) < 1e-12) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace sgxp2p::stats
