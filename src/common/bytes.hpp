// Byte-buffer utilities shared by every module.
//
// A `Bytes` value is the universal currency of this codebase: ciphertexts,
// serialized protocol messages, keys, and attestation quotes are all plain
// byte vectors. Helpers here keep conversions explicit and bounds-checked.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sgxp2p {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Builds a Bytes from the raw characters of a string (no encoding applied).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte view as text. Only for diagnostics; protocol data stays
/// binary.
inline std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

/// Lowercase hex encoding, two characters per byte.
std::string hex_encode(ByteView data);

/// Strict hex decoding: even length, [0-9a-fA-F] only. Returns nullopt on any
/// malformed input rather than guessing.
std::optional<Bytes> hex_decode(std::string_view hex);

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenates any number of byte views.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  std::size_t total = (static_cast<std::size_t>(0) + ... + views.size());
  out.reserve(total);
  (append(out, ByteView(views)), ...);
  return out;
}

/// XORs `src` into `dst` (dst ^= src). Sizes must match.
void xor_into(Bytes& dst, ByteView src);

/// Fixed-width little-endian store/load helpers used by serialization and the
/// crypto kernels (which are specified little-endian).
inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
inline std::uint64_t load_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}
/// Big-endian forms (SHA-256 is specified big-endian).
inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}
inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

}  // namespace sgxp2p
