// Virtual-time types for the discrete-event simulator.
//
// All protocol timing in this repository is expressed in virtual
// milliseconds. The simulator owns the clock; the SGX trusted-time feature
// (F4) exposes it to enclaves in whole seconds, matching the Linux SGX SDK's
// `sgx_get_trusted_time` granularity noted in the paper's footnote 4.
#pragma once

#include <cstdint>

namespace sgxp2p {

/// Milliseconds since simulation start.
using SimTime = std::int64_t;

/// Milliseconds.
using SimDuration = std::int64_t;

constexpr SimDuration milliseconds(std::int64_t ms) { return ms; }
constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * 1000.0);
}
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / 1000.0;
}

}  // namespace sgxp2p
