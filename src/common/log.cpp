#include "common/log.hpp"

#include <cstdio>

namespace sgxp2p {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)],
               message.c_str());
}

}  // namespace sgxp2p
