#include "common/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sgxp2p {

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::init_from_env() {
  const char* env = std::getenv("SGXP2P_LOG_LEVEL");
  if (env == nullptr) return;
  if (auto level = parse_log_level(env)) {
    set_level(*level);
  } else {
    write(LogLevel::Warn,
          log_detail::format_args("unknown SGXP2P_LOG_LEVEL '", env,
                                  "' (expected trace|debug|info|warn|error|"
                                  "off)"));
  }
}

void Logger::write(LogLevel level, std::string_view message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(message.size()), message.data());
}

}  // namespace sgxp2p
