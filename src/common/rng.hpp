// Deterministic, seedable PRNG for simulation control flow.
//
// This generator drives *simulation* choices (link delays, adversary coin
// flips, workload generation) so that every test and benchmark is exactly
// reproducible from a seed. It is NOT used for protocol randomness — the
// enclave's trusted randomness (F2) comes from crypto::Drbg, which models
// RDRAND and is invisible to the host. Keeping the two separated mirrors the
// paper's trust boundary.
//
// Algorithm: xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cstdint>

namespace sgxp2p {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    // Warm-up: low-entropy seeds leave a visible ramp in the first outputs
    // of xoshiro256**; discard a few states so early draws are well mixed.
    for (int i = 0; i < 16; ++i) (void)next_u64();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 yields 0. Uses rejection sampling to
  /// avoid modulo bias (matters for the unbiasedness statistics tests).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  // UniformRandomBitGenerator interface, usable with <random> and
  // std::shuffle.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace sgxp2p
