// Leveled stderr logging.
//
// The simulator is single-threaded but the TCP transport is not, so emission
// is serialized with a mutex. Verbosity defaults to Warn to keep test and
// benchmark output clean; examples raise it for narration.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace sgxp2p {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::mutex mu_;
};

namespace log_detail {
template <typename... Args>
std::string format_args(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace log_detail

#define SGXP2P_LOG(level, ...)                                              \
  do {                                                                      \
    if (::sgxp2p::Logger::instance().enabled(level)) {                      \
      ::sgxp2p::Logger::instance().write(                                   \
          level, ::sgxp2p::log_detail::format_args(__VA_ARGS__));           \
    }                                                                       \
  } while (0)

#define LOG_TRACE(...) SGXP2P_LOG(::sgxp2p::LogLevel::Trace, __VA_ARGS__)
#define LOG_DEBUG(...) SGXP2P_LOG(::sgxp2p::LogLevel::Debug, __VA_ARGS__)
#define LOG_INFO(...) SGXP2P_LOG(::sgxp2p::LogLevel::Info, __VA_ARGS__)
#define LOG_WARN(...) SGXP2P_LOG(::sgxp2p::LogLevel::Warn, __VA_ARGS__)
#define LOG_ERROR(...) SGXP2P_LOG(::sgxp2p::LogLevel::Error, __VA_ARGS__)

}  // namespace sgxp2p
