// Leveled stderr logging.
//
// The simulator is single-threaded but the TCP transport is not, so emission
// is serialized with a mutex. Verbosity defaults to Warn to keep test and
// benchmark output clean; examples raise it for narration, and tools/benches
// honor the SGXP2P_LOG_LEVEL environment variable via init_from_env().
//
// Hot-path discipline: the level gate is checked before any formatting, and
// formatting appends into a reused thread-local buffer instead of building a
// std::ostringstream per call; std::to_string handles arithmetic arguments
// and only genuinely stream-only types fall back to an ostringstream.
#pragma once

#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

namespace sgxp2p {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Case-insensitive level name ("trace", "debug", "info", "warn"/"warning",
/// "error", "off"/"none"); nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Applies SGXP2P_LOG_LEVEL from the environment when set and parseable.
  void init_from_env();

  void write(LogLevel level, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::mutex mu_;
};

namespace log_detail {

template <typename T>
void append_arg(std::string& out, T&& value) {
  using D = std::remove_cvref_t<T>;
  if constexpr (std::is_same_v<D, bool>) {
    out += value ? "true" : "false";
  } else if constexpr (std::is_same_v<D, char>) {
    out += value;
  } else if constexpr (std::is_convertible_v<D, std::string_view>) {
    out += std::string_view(value);
  } else if constexpr (std::is_arithmetic_v<D>) {
    out += std::to_string(value);
  } else {
    std::ostringstream oss;  // rare: types with only operator<<
    oss << value;
    out += oss.str();
  }
}

/// Formats into a thread-local buffer reused across calls; the returned view
/// is valid until the same thread logs again (Logger::write copies it to
/// stderr immediately).
template <typename... Args>
std::string_view format_args(Args&&... args) {
  thread_local std::string buffer;
  buffer.clear();
  (append_arg(buffer, std::forward<Args>(args)), ...);
  return buffer;
}

}  // namespace log_detail

#define SGXP2P_LOG(level, ...)                                              \
  do {                                                                      \
    if (::sgxp2p::Logger::instance().enabled(level)) {                      \
      ::sgxp2p::Logger::instance().write(                                   \
          level, ::sgxp2p::log_detail::format_args(__VA_ARGS__));           \
    }                                                                       \
  } while (0)

#define LOG_TRACE(...) SGXP2P_LOG(::sgxp2p::LogLevel::Trace, __VA_ARGS__)
#define LOG_DEBUG(...) SGXP2P_LOG(::sgxp2p::LogLevel::Debug, __VA_ARGS__)
#define LOG_INFO(...) SGXP2P_LOG(::sgxp2p::LogLevel::Info, __VA_ARGS__)
#define LOG_WARN(...) SGXP2P_LOG(::sgxp2p::LogLevel::Warn, __VA_ARGS__)
#define LOG_ERROR(...) SGXP2P_LOG(::sgxp2p::LogLevel::Error, __VA_ARGS__)

}  // namespace sgxp2p
