// Minimal binary serialization.
//
// The paper's prototype serialized messages with protobuf + rapidjson; we use
// a hand-rolled fixed-layout binary codec instead so the repository has no
// external dependencies and the on-wire size accounting in the benchmarks is
// exact. Integers are little-endian fixed width; variable-length fields are
// length-prefixed with u32. The reader never reads past its view and reports
// truncation via `ok()` instead of throwing mid-parse, so a byzantine host
// feeding garbage to an enclave cannot crash it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace sgxp2p {

class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    std::size_t n = buf_.size();
    buf_.resize(n + 4);
    store_le32(buf_.data() + n, v);
  }
  void u64(std::uint64_t v) {
    std::size_t n = buf_.size();
    buf_.resize(n + 8);
    store_le64(buf_.data() + n, v);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed byte string.
  void bytes(ByteView v) {
    u32(static_cast<std::uint32_t>(v.size()));
    append(buf_, v);
  }
  void str(std::string_view s) {
    bytes(ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  /// Raw bytes with no length prefix (fixed-size fields like hashes/keys).
  void raw(ByteView v) { append(buf_, v); }

  /// Empties the buffer but keeps its capacity — lets long-lived writers
  /// (per-node digest scratch, epoch loops) serialize without reallocating.
  void clear() { buf_.clear(); }

  [[nodiscard]] const Bytes& view() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(ByteView data) : data_(data) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = load_le32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = load_le64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  Bytes bytes() {
    std::uint32_t n = u32();
    if (!need(n)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }
  /// Fixed-size field with no length prefix.
  Bytes raw(std::size_t n) {
    if (!need(n)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// True iff no read so far ran off the end of the buffer.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True iff every byte has been consumed and no read failed. Parsers should
  /// require this to reject trailing garbage.
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sgxp2p
