// Invariant checks that stay on in release builds.
//
// Protocol code uses CHECK for conditions whose violation indicates a bug in
// this repository (never for conditions an adversary controls — those are
// handled as protocol events). Following the Core Guidelines' advice on
// preconditions, failures abort with location info rather than unwinding.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sgxp2p::check_detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace sgxp2p::check_detail

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond))                                                          \
      ::sgxp2p::check_detail::fail(#cond, __FILE__, __LINE__, "");        \
  } while (0)

#define CHECK_MSG(cond, msg)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::sgxp2p::check_detail::fail(#cond, __FILE__, __LINE__, (msg));     \
  } while (0)
