// Strongly-typed identifiers used across the network and protocol layers.
#pragma once

#include <cstdint>
#include <functional>

namespace sgxp2p {

/// Peer identifier. The paper assumes every peer has a public identifier
/// (assumption S1); in the simulator these are dense indices [0, N).
using NodeId = std::uint32_t;

constexpr NodeId kNoNode = 0xffffffffu;

/// Identifies one broadcast instance: the initiator plus the initiator's
/// per-instance sequence epoch. ERNG runs N concurrent ERB instances, so all
/// protocol state is keyed by InstanceId.
struct InstanceId {
  NodeId initiator = kNoNode;
  std::uint64_t epoch = 0;

  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

}  // namespace sgxp2p

template <>
struct std::hash<sgxp2p::InstanceId> {
  std::size_t operator()(const sgxp2p::InstanceId& id) const noexcept {
    std::uint64_t h = (static_cast<std::uint64_t>(id.initiator) << 32) ^
                      (id.epoch * 0x9e3779b97f4a7c15ULL);
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};
