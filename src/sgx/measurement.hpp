// Enclave measurements (MRENCLAVE analogue).
//
// An enclave's measurement is the hash of the program it runs. Remote
// attestation (F3) proves to a peer that a specific measurement is executing
// inside a genuine enclave, which is how execution integrity (P1) is
// established: a byzantine node that loads a modified program produces a
// different measurement and fails the peer's check (attack A1).
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace sgxp2p::sgx {

inline constexpr std::size_t kMeasurementSize = crypto::kSha256DigestSize;

struct ProgramIdentity {
  std::string name;     // e.g. "erb"
  std::string version;  // e.g. "1.0"

  friend bool operator==(const ProgramIdentity&,
                         const ProgramIdentity&) = default;
};

using Measurement = crypto::Sha256Digest;

inline Measurement measure(const ProgramIdentity& program) {
  crypto::Sha256 h;
  // Length-prefixed fields so ("ab","c") != ("a","bc").
  std::uint8_t len[8];
  store_le32(len, static_cast<std::uint32_t>(program.name.size()));
  store_le32(len + 4, static_cast<std::uint32_t>(program.version.size()));
  h.update(ByteView(len, sizeof len));
  h.update(ByteView(reinterpret_cast<const std::uint8_t*>(program.name.data()),
                    program.name.size()));
  h.update(
      ByteView(reinterpret_cast<const std::uint8_t*>(program.version.data()),
               program.version.size()));
  return h.finalize();
}

}  // namespace sgxp2p::sgx
