// The enclave runtime (SGX feature F1).
//
// An Enclave is the trusted half of a peer (Fig. 1 of the paper). It can:
//   - read unbiased randomness (F2) via `read_rand()`,
//   - read trusted elapsed time (F4) via `trusted_time()`,
//   - produce attestation quotes (F3) via `quote()`,
//   - seal state to the host with a key the host does not have.
//
// It cannot touch the network. All I/O flows through the EnclaveHostIface
// OCALL interface — the host decides whether bytes actually move, which is
// the paper's reduction: once the channel payloads are encrypted and MAC'd
// (P2/P3), the *only* leverage a byzantine host retains over the protocol is
// omission/delay/replay of opaque blobs (Theorem A.2), and P5/P6 reduce
// delay/replay to omission.
//
// Lifecycle: destroying an Enclave destroys all its state. A relaunched
// enclave gets a fresh DRBG and no session keys (the paper's P6 note on
// restarts); rejoining an ongoing execution requires sealed, rollback-
// protected checkpoints plus re-attestation — see src/recovery/.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/drbg.hpp"
#include "obs/trace.hpp"
#include "sgx/attestation.hpp"
#include "sgx/measurement.hpp"
#include "sgx/platform.hpp"

namespace sgxp2p::sgx {

/// OCALL surface: everything an enclave may ask of its untrusted host.
/// Byzantine hosts implement this adversarially (see src/adversary/).
class EnclaveHostIface {
 public:
  virtual ~EnclaveHostIface() = default;
  /// Asks the host to transfer an opaque blob to peer `to`. The host may
  /// drop, delay, or replay it; it cannot decrypt or undetectably modify it.
  virtual void transfer(NodeId to, Bytes blob) = 0;
};

class Enclave {
 public:
  /// Loads `program` into a new enclave on CPU `cpu`. `host` is the OCALL
  /// sink; `platform` provides the hardware features. Both must outlive the
  /// enclave.
  Enclave(SgxPlatform& platform, CpuId cpu, const ProgramIdentity& program,
          EnclaveHostIface& host);
  virtual ~Enclave() = default;

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  [[nodiscard]] const Measurement& measurement() const { return measurement_; }
  [[nodiscard]] CpuId cpu() const { return cpu_; }

  /// ECALL: the host delivers an inbound blob claimed to come from `from`.
  /// (The claim is untrusted; authenticity is established by the channel
  /// layer inside the enclave.)
  virtual void deliver(NodeId from, ByteView blob) = 0;

  /// The accounted entry point hosts call instead of deliver(): meters the
  /// world switch (sgx.ecalls, and virtual cost when the run's cost model
  /// is on) before crossing into trusted code.
  void ecall_deliver(NodeId from, ByteView blob) {
    account_ecall("deliver");
    deliver(from, blob);
  }

 protected:
  /// Meters one enclave entry of the given kind ("deliver", "tick", …) and
  /// emits an `sgx ecall` trace event when the cost model charged anything.
  /// Subclasses call this for ECALLs that don't route through
  /// ecall_deliver (e.g. the round tick).
  void account_ecall(const char* kind) {
    const SimDuration cost = platform_->transitions().ecall(transition_carry_);
    if (cost > 0) {
      obs::trace_event(trusted_time(), static_cast<std::uint32_t>(cpu_),
                       "sgx", "ecall", obs::fstr("kind", kind),
                       obs::fnum("cost_ms", cost));
    }
  }
  /// F2 — hardware randomness, invisible to the host.
  crypto::Drbg& read_rand() { return drbg_; }

  /// F4 — trusted elapsed time in milliseconds since platform start.
  [[nodiscard]] SimTime trusted_time() const {
    return platform_->clock().now();
  }

  /// F3 — attestation quote over `report_data`.
  [[nodiscard]] Quote quote(ByteView report_data) const {
    return make_quote(*platform_, measurement_, cpu_, report_data);
  }

  /// Sealing: encrypt state for storage by the host. Only this program on
  /// this CPU can unseal. The nonce is drawn from the enclave DRBG — a
  /// per-launch counter would repeat after a relaunch while the sealing key
  /// (CPU + measurement) stays fixed, giving the host two ciphertexts under
  /// one (key, nonce) pair.
  [[nodiscard]] Bytes seal(ByteView data);
  [[nodiscard]] std::optional<Bytes> unseal(ByteView sealed) const;

  /// Anti-rollback: the platform monotonic counter for this (CPU, program).
  /// Survives enclave destruction — binding a counter value into sealed
  /// state lets a relaunch detect a host replaying a stale blob.
  [[nodiscard]] std::uint64_t monotonic_read() const {
    return platform_->counter_read(cpu_, measurement_);
  }
  std::uint64_t monotonic_increment() {
    return platform_->counter_increment(cpu_, measurement_);
  }

  /// OCALL: hand a blob to the host for transfer. Metered: each exit adds
  /// its virtual cost to the pending charge the Network folds into this
  /// message's arrival time, so a fan-out of k sends pays k serialized
  /// transitions.
  void ocall_transfer(NodeId to, Bytes blob) {
    const SimDuration cost = platform_->transitions().ocall(transition_carry_);
    if (cost > 0) {
      obs::trace_event(trusted_time(), static_cast<std::uint32_t>(cpu_),
                       "sgx", "ocall", obs::fstr("kind", "transfer"),
                       obs::fnum("cost_ms", cost));
    }
    host_->transfer(to, std::move(blob));
  }

 private:
  SgxPlatform* platform_;
  CpuId cpu_;
  Measurement measurement_;
  EnclaveHostIface* host_;
  crypto::Drbg drbg_;
  // Sub-millisecond remainder of the calibrated transition model. Per
  // enclave so ms-boundary crossings follow this node's canonical
  // transition order — deterministic under the parallel engine.
  TransitionMeter::NsCarry transition_carry_;
};

}  // namespace sgxp2p::sgx
