// Remote attestation (SGX feature F3), simulated.
//
// Real SGX attestation chains an enclave REPORT through the Quoting Enclave's
// EPID group signature to the Intel Attestation Service. The paper's own
// evaluation used "a simulated Intel attestation service (IAS)". We model
// the whole chain as a MAC under the platform's attestation root key, with
// SimIAS playing the role of Intel: it holds the root key and vouches for
// quotes. The adversary (a byzantine host) does not have the root key, so it
// cannot mint a quote for a program it tampered with — exactly the property
// the setup phase (P1/P2) needs.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "sgx/measurement.hpp"
#include "sgx/platform.hpp"

namespace sgxp2p::sgx {

/// An attestation quote: "an enclave with `measurement` on CPU `cpu`
/// produced `report_data`". `report_data` binds protocol data (here: the
/// enclave's ephemeral DH public key) into the attestation, preventing
/// man-in-the-middle relays of someone else's quote.
struct Quote {
  Measurement measurement{};
  CpuId cpu = 0;
  Bytes report_data;
  Bytes mac;  // HMAC(attestation_root, measurement ‖ cpu ‖ report_data)

  [[nodiscard]] Bytes serialize() const;
  static std::optional<Quote> deserialize(ByteView data);
};

/// Produces a quote. Called only from inside Enclave (the enclave runtime is
/// the only code path holding both the platform and a genuine measurement).
Quote make_quote(const SgxPlatform& platform, const Measurement& measurement,
                 CpuId cpu, ByteView report_data);

/// The verification service. In deployment this is a remote Intel endpoint;
/// here it is instantiated next to the platform and handed (by value) to
/// verifying enclaves.
class SimIAS {
 public:
  explicit SimIAS(const SgxPlatform& platform)
      : root_key_(platform.attestation_root_key()) {}

  /// Checks the quote's MAC and that it attests the expected program.
  [[nodiscard]] bool verify(const Quote& quote,
                            const Measurement& expected) const;

 private:
  Bytes root_key_;
};

}  // namespace sgxp2p::sgx
