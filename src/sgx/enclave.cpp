#include "sgx/enclave.hpp"

#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"

namespace sgxp2p::sgx {

Enclave::Enclave(SgxPlatform& platform, CpuId cpu,
                 const ProgramIdentity& program, EnclaveHostIface& host)
    : platform_(&platform),
      cpu_(cpu),
      measurement_(measure(program)),
      host_(&host),
      drbg_(platform.make_enclave_drbg(cpu)) {}

Bytes Enclave::seal(ByteView data) {
  Bytes key = platform_->sealing_key(cpu_, measurement_);
  // Sealing key is 32 bytes; expand to the AEAD's 64-byte enc+mac key.
  Bytes aead_key =
      crypto::hkdf_expand(key, to_bytes("seal"), crypto::kAeadKeySize);
  // Random 96-bit nonce from the enclave DRBG (invisible to the host). A
  // counter restarting at 0 on relaunch would reuse nonces under the fixed
  // sealing key; the DRBG stream never repeats across launches.
  std::uint8_t nonce[crypto::kAeadNonceSize];
  drbg_.generate(nonce, sizeof nonce);
  return crypto::aead_seal(aead_key, ByteView(nonce, sizeof nonce), {}, data);
}

std::optional<Bytes> Enclave::unseal(ByteView sealed) const {
  Bytes key = platform_->sealing_key(cpu_, measurement_);
  Bytes aead_key =
      crypto::hkdf_expand(key, to_bytes("seal"), crypto::kAeadKeySize);
  return crypto::aead_open(aead_key, {}, sealed);
}

}  // namespace sgxp2p::sgx
