// Trusted elapsed time (SGX feature F4).
//
// `sgx_get_trusted_time` returns elapsed time relative to a reference point,
// sourced from the platform rather than the OS — the OS cannot skew it. In
// the simulator this is the virtual clock (sim::Simulator implements
// TrustedClock); on the TCP transport it is CLOCK_MONOTONIC. Protocol code
// only ever sees this interface, which is what makes lockstep execution (P5)
// sound even on a node whose OS is byzantine.
#pragma once

#include "common/time.hpp"

namespace sgxp2p::sgx {

class TrustedClock {
 public:
  virtual ~TrustedClock() = default;
  /// Milliseconds since the platform reference point.
  [[nodiscard]] virtual SimTime now() const = 0;
};

}  // namespace sgxp2p::sgx
