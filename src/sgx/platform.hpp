// Simulated SGX platform (the "hardware").
//
// One SgxPlatform instance models the fleet of SGX-enabled CPUs in a
// deployment: it owns the provisioning secrets that real hardware carries —
// the attestation root key (EPID analogue), the per-CPU sealing root, and
// the hardware entropy source behind RDRAND. Enclaves obtain derived secrets
// through the platform; untrusted hosts have no accessor for any of them.
// The trust boundary of the paper's model (Fig. 1) is therefore enforced by
// the type system: code that only holds a Host/OS reference cannot reach
// enclave state or platform secrets.
//
// Determinism: the platform is seeded explicitly so whole-network simulations
// replay bit-for-bit. Within the model this loses nothing — the host cannot
// observe the seed, so the randomness is still "unbiased" from the
// adversary's standpoint (feature F2), which is the only property the
// protocol proofs use.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "sgx/measurement.hpp"
#include "sgx/transition.hpp"
#include "sgx/trusted_time.hpp"

namespace sgxp2p::sgx {

using CpuId = std::uint64_t;

class SgxPlatform {
 public:
  /// `clock` must outlive the platform. `seed` roots all platform secrets.
  SgxPlatform(const TrustedClock& clock, ByteView seed);

  [[nodiscard]] const TrustedClock& clock() const { return *clock_; }

  /// Fresh entropy stream for a newly launched enclave. Each launch gets an
  /// independent stream (an enclave that is destroyed and relaunched does
  /// not resume its old randomness — matching P6's "restart = new node").
  crypto::Drbg make_enclave_drbg(CpuId cpu);

  /// Sealing key bound to (CPU, measurement) — MRENCLAVE policy: only the
  /// same program on the same CPU can unseal.
  Bytes sealing_key(CpuId cpu, const Measurement& measurement) const;

  /// Quote signing key. Private to the platform and to SimIAS.
  [[nodiscard]] const Bytes& attestation_root_key() const {
    return attestation_root_;
  }

  /// Monotonic counters (SGX's anti-rollback primitive, sgx_create/
  /// increment_monotonic_counter). One counter per (CPU, measurement); the
  /// value lives in the platform "hardware", so it survives enclave
  /// destruction and relaunch. The host has no API to decrement or reset it
  /// — a sealed blob bound to an old counter value is therefore detectable
  /// as a rollback by any later incarnation of the same program.
  [[nodiscard]] std::uint64_t counter_read(CpuId cpu,
                                           const Measurement& m) const;
  /// Increments and returns the new value (first increment returns 1).
  std::uint64_t counter_increment(CpuId cpu, const Measurement& m);

  /// Fleet-wide enclave-transition meter (counts every ecall/ocall on any
  /// CPU of this platform; charges virtual cost when configured). Lives on
  /// the platform because transitions are a hardware property, not protocol
  /// state — the Testbed binds it to its registry and cost model.
  [[nodiscard]] TransitionMeter& transitions() { return transitions_; }

 private:
  const TrustedClock* clock_;
  Bytes attestation_root_;
  Bytes sealing_root_;
  crypto::Drbg entropy_;
  std::uint64_t launch_counter_ = 0;
  // Guards counters_: under SimEngine::kParallel, enclaves on different
  // worker threads read/bump their monotonic counters concurrently. Each
  // (CPU, measurement) key is only touched by its own node, so per-counter
  // values stay deterministic; the lock just protects the map structure.
  mutable std::mutex counters_mu_;
  std::map<std::pair<CpuId, Measurement>, std::uint64_t> counters_;
  TransitionMeter transitions_;
};

}  // namespace sgxp2p::sgx
