// Enclave-transition accounting (the cost the paper's testbed pays for
// free in simulation).
//
// Real SGX enclaves pay microseconds per world switch: an ECALL flushes and
// refills TLBs, an OCALL exits and re-enters the trusted environment
// (Stress-SGX and the IIT-Delhi SGX benchmark suite in PAPERS.md measure
// 8–14k cycles per transition on client parts). The simulator's virtual
// clock ignores this by default, which flatters the O(n²) clique protocols:
// every round a node performs one ECALL per inbound message plus one OCALL
// per outbound message, so transition overhead scales with message
// complexity — exactly the term committee sharding is supposed to shrink.
//
// TransitionMeter counts every ecall/ocall and, when configured with
// nonzero per-transition costs, charges the virtual cost through a caller-
// supplied hook (the Testbed wires it to Simulator::charge, which folds the
// accumulated cost into the arrival time of the handler's next sends).
// Default costs are zero, so existing baselines, traces, and bench tables
// are unchanged unless a run opts in.
//
// Metrics (registered by bind(), typically on the testbed's registry):
//   sgx.ecalls              total enclave entries
//   sgx.ocalls              total enclave exits
//   sgx.transition_cost_ms  virtual ms charged to the simulator clock
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::sgx {

/// Per-transition virtual costs in ms. Zero (the default) disables charging
/// while counting still happens.
struct TransitionCosts {
  SimDuration ecall_ms = 0;
  SimDuration ocall_ms = 0;

  [[nodiscard]] bool enabled() const { return ecall_ms > 0 || ocall_ms > 0; }
};

class TransitionMeter {
 public:
  using ChargeFn = std::function<void(SimDuration)>;

  /// Registers the sgx.* counters on `registry`. Optional: an unbound meter
  /// still keeps local counts (platforms built outside a Testbed).
  void bind(obs::MetricsRegistry& registry) {
    ecalls_ctr_ = &registry.counter("sgx.ecalls");
    ocalls_ctr_ = &registry.counter("sgx.ocalls");
    cost_ctr_ = &registry.counter("sgx.transition_cost_ms");
  }

  /// Sets the cost model and the sink the virtual cost is charged to.
  void configure(TransitionCosts costs, ChargeFn charge) {
    costs_ = costs;
    charge_ = std::move(charge);
  }

  /// Records one enclave entry; returns the virtual cost charged (0 when
  /// the cost model is off).
  SimDuration ecall() {
    ++ecalls_;
    if (ecalls_ctr_ != nullptr) ecalls_ctr_->inc();
    return apply(costs_.ecall_ms);
  }

  /// Records one enclave exit; returns the virtual cost charged.
  SimDuration ocall() {
    ++ocalls_;
    if (ocalls_ctr_ != nullptr) ocalls_ctr_->inc();
    return apply(costs_.ocall_ms);
  }

  [[nodiscard]] const TransitionCosts& costs() const { return costs_; }
  [[nodiscard]] std::uint64_t ecalls() const { return ecalls_; }
  [[nodiscard]] std::uint64_t ocalls() const { return ocalls_; }
  [[nodiscard]] std::uint64_t charged_ms() const { return charged_ms_; }

 private:
  SimDuration apply(SimDuration cost) {
    if (cost <= 0) return 0;
    charged_ms_ += static_cast<std::uint64_t>(cost);
    if (cost_ctr_ != nullptr) cost_ctr_->inc(static_cast<std::uint64_t>(cost));
    if (charge_) charge_(cost);
    return cost;
  }

  TransitionCosts costs_;
  ChargeFn charge_;
  std::uint64_t ecalls_ = 0;
  std::uint64_t ocalls_ = 0;
  std::uint64_t charged_ms_ = 0;
  obs::Counter* ecalls_ctr_ = nullptr;
  obs::Counter* ocalls_ctr_ = nullptr;
  obs::Counter* cost_ctr_ = nullptr;
};

}  // namespace sgxp2p::sgx
