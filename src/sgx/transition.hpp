// Enclave-transition accounting (the cost the paper's testbed pays for
// free in simulation).
//
// Real SGX enclaves pay microseconds per world switch: an ECALL flushes and
// refills TLBs, an OCALL exits and re-enters the trusted environment
// (Stress-SGX and the IIT-Delhi SGX benchmark suite in PAPERS.md measure
// 8–14k cycles per transition on client parts). The simulator's virtual
// clock ignores this by default, which flatters the O(n²) clique protocols:
// every round a node performs one ECALL per inbound message plus one OCALL
// per outbound message, so transition overhead scales with message
// complexity — exactly the term committee sharding is supposed to shrink.
//
// Two cost resolutions coexist:
//   - ecall_ms/ocall_ms: coarse per-transition milliseconds (PR 6's model,
//     handy for exaggerated what-if runs);
//   - ecall_ns/ocall_ns: the calibrated sub-millisecond model. Nanoseconds
//     accumulate in a caller-owned NsCarry and are charged to the virtual
//     clock whenever whole milliseconds accrue, so ~250 transitions at
//     ~4 µs cost 1 virtual ms. The carry lives per enclave (each node's
//     transition order is canonical), which keeps the ms-boundary crossings
//     deterministic under the parallel engine — one global carry would make
//     them depend on worker interleaving.
//
// The calibrated preset also models the EPC paging cliff: beyond the
// resident-set threshold (~93 MiB usable of the 128 MiB EPC on the measured
// parts), every transition pays a working-set miss fraction of the EWB
// evict+reload cost (≈40k cycles/page). The penalty is a deterministic
// smooth fraction — fault_ns · (ws − resident)/ws — not a random fault
// draw, so runs stay reproducible.
//
// TransitionMeter counts every ecall/ocall and, when configured with
// nonzero per-transition costs, charges the virtual cost through a caller-
// supplied hook (the Testbed wires it to Simulator::charge, which folds the
// accumulated cost into the arrival time of the handler's next sends).
// Default costs are zero, so existing baselines, traces, and bench tables
// are unchanged unless a run opts in. Counters are relaxed atomics: under
// SimEngine::kParallel concurrent handlers meter transitions from worker
// threads (the charge hook is worker-aware too — see Simulator::charge).
//
// Metrics (registered by bind(), typically on the testbed's registry):
//   sgx.ecalls              total enclave entries
//   sgx.ocalls              total enclave exits
//   sgx.transition_cost_ms  virtual ms charged to the simulator clock
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::sgx {

/// Per-transition virtual costs. Zero (the default) disables charging
/// while counting still happens.
struct TransitionCosts {
  SimDuration ecall_ms = 0;
  SimDuration ocall_ms = 0;

  // Calibrated sub-millisecond model: per-transition nanoseconds, plus the
  // EPC working-set penalty applied to every transition when the enclave's
  // working set exceeds the resident EPC.
  std::uint64_t ecall_ns = 0;
  std::uint64_t ocall_ns = 0;
  std::uint64_t epc_working_set_kb = 0;  // per-enclave heap+code footprint
  std::uint64_t epc_resident_kb = 0;     // usable EPC before paging begins
  std::uint64_t epc_fault_ns = 0;        // EWB evict + ELDU reload, per touch

  [[nodiscard]] bool enabled() const {
    return ecall_ms > 0 || ocall_ms > 0 || ecall_ns > 0 || ocall_ns > 0;
  }

  /// Extra nanoseconds every transition pays once the working set spills
  /// out of the EPC: the miss fraction (ws − resident)/ws of one fault.
  [[nodiscard]] std::uint64_t paging_penalty_ns() const {
    if (epc_working_set_kb == 0 || epc_working_set_kb <= epc_resident_kb) {
      return 0;
    }
    return epc_fault_ns * (epc_working_set_kb - epc_resident_kb) /
           epc_working_set_kb;
  }
  [[nodiscard]] std::uint64_t effective_ecall_ns() const {
    return ecall_ns == 0 ? 0 : ecall_ns + paging_penalty_ns();
  }
  [[nodiscard]] std::uint64_t effective_ocall_ns() const {
    return ocall_ns == 0 ? 0 : ocall_ns + paging_penalty_ns();
  }

  /// The `--sgx-costs calibrated` preset. Constants from the PAPERS.md
  /// measurement studies:
  ///   - ECALL ≈ 8.6–10.5k cycles warm (Stress-SGX), OCALL ≈ 12–14.1k
  ///     cycles (IIT-Delhi comprehensive suite); at the ~3.4 GHz client
  ///     parts both studies use that is ≈3.1 µs in / ≈4.0 µs out.
  ///   - EPC: 128 MiB raw, ≈93 MiB usable after SGX metadata; one EWB
  ///     evict + ELDU reload ≈ 40k cycles ≈ 11.8 µs per 4 KiB page.
  /// epc_working_set_kb stays 0 (no paging) unless the run sets it — e.g.
  /// sgxp2p-sim --sgx-working-set.
  [[nodiscard]] static TransitionCosts calibrated() {
    TransitionCosts c;
    c.ecall_ns = 3100;
    c.ocall_ns = 4000;
    c.epc_resident_kb = 95232;
    c.epc_fault_ns = 11800;
    return c;
  }
};

class TransitionMeter {
 public:
  using ChargeFn = std::function<void(SimDuration)>;

  /// Caller-owned nanosecond accumulator for the calibrated model. One per
  /// enclave: sub-ms remainders roll over deterministically in that node's
  /// canonical transition order.
  struct NsCarry {
    std::uint64_t ns = 0;
  };

  /// Registers the sgx.* counters on `registry`. Optional: an unbound meter
  /// still keeps local counts (platforms built outside a Testbed).
  void bind(obs::MetricsRegistry& registry) {
    ecalls_ctr_ = &registry.counter("sgx.ecalls");
    ocalls_ctr_ = &registry.counter("sgx.ocalls");
    cost_ctr_ = &registry.counter("sgx.transition_cost_ms");
  }

  /// Sets the cost model and the sink the virtual cost is charged to. The
  /// hook may be invoked from parallel-engine worker threads; the Testbed's
  /// Simulator::charge sink accumulates per-worker-event there.
  void configure(TransitionCosts costs, ChargeFn charge) {
    costs_ = costs;
    eff_ecall_ns_ = costs.effective_ecall_ns();
    eff_ocall_ns_ = costs.effective_ocall_ns();
    charge_ = std::move(charge);
  }

  /// Records one enclave entry; returns the virtual cost charged (0 when
  /// the cost model is off or no whole millisecond accrued yet).
  SimDuration ecall(NsCarry& carry) {
    ecalls_.fetch_add(1, std::memory_order_relaxed);
    if (ecalls_ctr_ != nullptr) ecalls_ctr_->inc();
    return apply(costs_.ecall_ms, eff_ecall_ns_, carry);
  }

  /// Records one enclave exit; returns the virtual cost charged.
  SimDuration ocall(NsCarry& carry) {
    ocalls_.fetch_add(1, std::memory_order_relaxed);
    if (ocalls_ctr_ != nullptr) ocalls_ctr_->inc();
    return apply(costs_.ocall_ms, eff_ocall_ns_, carry);
  }

  [[nodiscard]] const TransitionCosts& costs() const { return costs_; }
  [[nodiscard]] std::uint64_t ecalls() const {
    return ecalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ocalls() const {
    return ocalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t charged_ms() const {
    return charged_ms_.load(std::memory_order_relaxed);
  }

 private:
  SimDuration apply(SimDuration ms_cost, std::uint64_t ns_cost,
                    NsCarry& carry) {
    SimDuration cost = ms_cost;
    if (ns_cost > 0) {
      carry.ns += ns_cost;
      cost += static_cast<SimDuration>(carry.ns / 1000000);
      carry.ns %= 1000000;
    }
    if (cost <= 0) return 0;
    charged_ms_.fetch_add(static_cast<std::uint64_t>(cost),
                          std::memory_order_relaxed);
    if (cost_ctr_ != nullptr) cost_ctr_->inc(static_cast<std::uint64_t>(cost));
    if (charge_) charge_(cost);
    return cost;
  }

  TransitionCosts costs_;
  std::uint64_t eff_ecall_ns_ = 0;
  std::uint64_t eff_ocall_ns_ = 0;
  ChargeFn charge_;
  std::atomic<std::uint64_t> ecalls_{0};
  std::atomic<std::uint64_t> ocalls_{0};
  std::atomic<std::uint64_t> charged_ms_{0};
  obs::Counter* ecalls_ctr_ = nullptr;
  obs::Counter* ocalls_ctr_ = nullptr;
  obs::Counter* cost_ctr_ = nullptr;
};

}  // namespace sgxp2p::sgx
