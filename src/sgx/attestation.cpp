#include "sgx/attestation.hpp"

#include "common/serde.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"

namespace sgxp2p::sgx {

namespace {
Bytes quote_tbs(const Measurement& measurement, CpuId cpu,
                ByteView report_data) {
  BinaryWriter w;
  w.raw(ByteView(measurement.data(), measurement.size()));
  w.u64(cpu);
  w.bytes(report_data);
  return w.take();
}
}  // namespace

Bytes Quote::serialize() const {
  BinaryWriter w;
  w.raw(ByteView(measurement.data(), measurement.size()));
  w.u64(cpu);
  w.bytes(report_data);
  w.bytes(mac);
  return w.take();
}

std::optional<Quote> Quote::deserialize(ByteView data) {
  BinaryReader r(data);
  Quote q;
  Bytes m = r.raw(kMeasurementSize);
  q.cpu = r.u64();
  q.report_data = r.bytes();
  q.mac = r.bytes();
  if (!r.done() || m.size() != kMeasurementSize) return std::nullopt;
  std::copy(m.begin(), m.end(), q.measurement.begin());
  return q;
}

Quote make_quote(const SgxPlatform& platform, const Measurement& measurement,
                 CpuId cpu, ByteView report_data) {
  Quote q;
  q.measurement = measurement;
  q.cpu = cpu;
  q.report_data.assign(report_data.begin(), report_data.end());
  q.mac = crypto::HmacSha256::mac_bytes(
      platform.attestation_root_key(),
      quote_tbs(measurement, cpu, report_data));
  return q;
}

bool SimIAS::verify(const Quote& quote, const Measurement& expected) const {
  Bytes expected_mac = crypto::HmacSha256::mac_bytes(
      root_key_, quote_tbs(quote.measurement, quote.cpu, quote.report_data));
  if (!crypto::ct_equal(expected_mac, quote.mac)) return false;
  return crypto::ct_equal(
      ByteView(quote.measurement.data(), quote.measurement.size()),
      ByteView(expected.data(), expected.size()));
}

}  // namespace sgxp2p::sgx
