#include "sgx/platform.hpp"

namespace sgxp2p::sgx {

SgxPlatform::SgxPlatform(const TrustedClock& clock, ByteView seed)
    : clock_(&clock),
      attestation_root_(
          crypto::HmacSha256::mac_bytes(seed, to_bytes("attestation-root"))),
      sealing_root_(
          crypto::HmacSha256::mac_bytes(seed, to_bytes("sealing-root"))),
      entropy_(crypto::HmacSha256::mac_bytes(seed, to_bytes("entropy-root"))) {}

crypto::Drbg SgxPlatform::make_enclave_drbg(CpuId cpu) {
  std::uint8_t info[16];
  store_le64(info, cpu);
  store_le64(info + 8, launch_counter_++);
  Bytes seed = entropy_.generate(32);
  append(seed, ByteView(info, sizeof info));
  return crypto::Drbg(seed);
}

std::uint64_t SgxPlatform::counter_read(CpuId cpu,
                                        const Measurement& m) const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  auto it = counters_.find({cpu, m});
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t SgxPlatform::counter_increment(CpuId cpu, const Measurement& m) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return ++counters_[{cpu, m}];
}

Bytes SgxPlatform::sealing_key(CpuId cpu,
                               const Measurement& measurement) const {
  std::uint8_t info[8];
  store_le64(info, cpu);
  Bytes input = concat(ByteView(info, sizeof info),
                       ByteView(measurement.data(), measurement.size()));
  return crypto::HmacSha256::mac_bytes(sealing_root_, input);
}

}  // namespace sgxp2p::sgx
