// Shared experiment runners for the figure/table benchmarks.
//
// Calibration: Δ = 1 s (round = 2Δ = 2 s of virtual time), chosen so the
// honest-case ERB termination lands near the paper's ~4 s and the N=512,
// t/N=1/4 chain-delay worst case lands in the paper's few-hundred-seconds
// regime. All reported times are VIRTUAL seconds from the discrete-event
// clock — shape, not wall-clock, is the reproduction target (DESIGN.md §1).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/log.hpp"
#include "net/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"
#include "protocol/erng_opt.hpp"

namespace sgxp2p::bench {

inline sim::TestbedConfig bench_config(std::uint32_t n, std::uint64_t seed,
                                       protocol::ChannelMode mode) {
  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.net.base_delay = milliseconds(500);
  cfg.net.max_jitter = milliseconds(500);  // Δ = 1 s
  cfg.mode = mode;
  return cfg;
}

struct RunStats {
  std::uint32_t rounds = 0;        // rounds executed by the harness
  double termination_s = 0;        // max honest decision time (virtual s)
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  bool all_decided = false;
  bool all_value = false;          // every honest decision was non-⊥
};

/// Honest (or chain-byzantine) ERB execution. `f` byzantine nodes form the
/// Section 6.3 chain (f = 0 → all honest); the initiator is node 0 (the
/// chain head when f > 0).
inline RunStats run_erb(std::uint32_t n, std::uint32_t f,
                        protocol::ChannelMode mode, std::uint64_t seed = 1) {
  sim::Testbed bed(bench_config(n, seed, mode));

  std::shared_ptr<adversary::ChainPlan> plan;
  if (f > 0) {
    plan = std::make_shared<adversary::ChainPlan>();
    for (NodeId id = 0; id < f; ++id) plan->order.push_back(id);
    plan->release = adversary::ChainPlan::Release::kSingleHonest;
    plan->honest_target = f;
  }

  Bytes payload = to_bytes("benchmark broadcast payload bytes");
  bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
          protocol::PeerConfig cfg,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, cfg, ias, NodeId{0},
            id == 0 ? payload : Bytes{});
      },
      [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
        if (plan && id < f) {
          return std::make_unique<adversary::ChainStrategy>(plan);
        }
        return nullptr;
      });
  bed.start();

  auto honest_done = [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  };
  RunStats out;
  out.rounds = bed.run_rounds(bed.config().effective_t() + 4, honest_done);
  out.messages = bed.network().meter().messages();
  out.bytes = bed.network().meter().bytes();
  out.all_decided = true;
  out.all_value = true;
  SimTime latest = 0;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
    if (!r.decided) out.all_decided = false;
    if (!r.value.has_value()) out.all_value = false;
    latest = std::max(latest, r.decided_at);
  }
  out.termination_s = to_seconds(latest - bed.start_time());
  return out;
}

template <typename NodeT>
RunStats finish_erng(sim::Testbed& bed, std::uint32_t max_rounds) {
  bed.start();
  auto done = [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<NodeT>(id).result().done) return false;
    }
    return true;
  };
  RunStats out;
  out.rounds = bed.run_rounds(max_rounds, done);
  out.messages = bed.network().meter().messages();
  out.bytes = bed.network().meter().bytes();
  out.all_decided = true;
  out.all_value = true;
  SimTime latest = 0;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<NodeT>(id).result();
    if (!r.done) out.all_decided = false;
    if (r.is_bottom) out.all_value = false;
    latest = std::max(latest, r.decided_at);
  }
  out.termination_s = to_seconds(latest - bed.start_time());
  return out;
}

inline RunStats run_erng_basic(std::uint32_t n, protocol::ChannelMode mode,
                               std::uint64_t seed = 1) {
  sim::Testbed bed(bench_config(n, seed, mode));
  bed.build([&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                protocol::PeerConfig cfg, const sgx::SimIAS& ias)
                -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErngBasicNode>(platform, id, host, cfg,
                                                     ias);
  });
  return finish_erng<protocol::ErngBasicNode>(
      bed, bed.config().effective_t() + 4);
}

inline RunStats run_erng_opt(std::uint32_t n, bool force_fallback,
                             protocol::ChannelMode mode,
                             std::uint64_t seed = 1, bool one_phase = false) {
  auto cfg = bench_config(n, seed, mode);
  cfg.t = std::max(1u, n / 3);  // optimized variant assumes t ≤ N/3
  if (2 * cfg.t >= n) cfg.t = (n - 1) / 2;
  sim::Testbed bed(cfg);
  protocol::ErngOptParams params;
  params.force_fallback = force_fallback;
  params.one_phase = one_phase;
  bed.build([&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                protocol::PeerConfig pc, const sgx::SimIAS& ias)
                -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErngOptNode>(platform, id, host, pc, ias,
                                                   params);
  });
  return finish_erng<protocol::ErngOptNode>(bed, n + 8);
}

/// Parses a single `--max-exp K` style flag; returns `fallback` when absent.
inline int flag_int(int argc, char** argv, const std::string& name,
                    int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (name == argv[i]) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

// ----- parallel sweep execution -----

/// Runs `count` independent sweep points, up to `jobs` concurrently, and
/// returns their results in index order. Determinism contract: each point
/// runs against its own MetricsRegistry (bound as the thread's current()
/// while the point executes, so Testbed/Simulator/Network and every cached
/// instrument resolve into it), and after all points finish the per-point
/// snapshots are folded into the caller's registry in index order. Every
/// fold operation is commutative, and the simulations themselves share no
/// mutable state, so tables and aggregate metrics are byte-identical for
/// any `jobs` value — including jobs=1, which takes the same isolate-and-
/// merge path.
///
/// The first exception thrown by a point (lowest index) is rethrown on the
/// calling thread after all workers join.
template <typename R, typename PointFn>
std::vector<R> run_sweep(std::size_t count, int jobs, const PointFn& point) {
  obs::MetricsRegistry& parent = obs::MetricsRegistry::current();
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries(count);
  for (auto& r : registries) r = std::make_unique<obs::MetricsRegistry>();
  std::vector<R> results(count);
  std::vector<std::exception_ptr> errors(count);

  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      obs::MetricsRegistry::ScopedCurrent bind(*registries[i]);
      try {
        results[i] = point(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::size_t n_threads = count == 0 ? 0
                                     : std::min<std::size_t>(
                                           static_cast<std::size_t>(
                                               jobs < 1 ? 1 : jobs),
                                           count);
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (const auto& r : registries) {
    obs::merge_snapshot(parent, r->snapshot());
  }
  return results;
}

/// Resolves the `--jobs N` flag. Tracing records into one global ring, so a
/// requested parallel sweep degrades to sequential when the trace is on —
/// otherwise event interleaving would depend on scheduling.
inline int sweep_jobs(int argc, char** argv) {
  int jobs = flag_int(argc, argv, "--jobs", 1);
  if (jobs < 1) jobs = 1;
  if (jobs > 1 && obs::TraceRecorder::global().enabled()) {
    std::fprintf(stderr, "note: --trace forces --jobs 1\n");
    return 1;
  }
  return jobs;
}

// ----- observability plumbing shared by every figure/table bench -----

struct ObsOptions {
  std::string bench;         // e.g. "fig2a"
  std::string metrics_path;  // empty → no snapshot written
  std::string trace_path;    // empty → tracing stays off
  std::size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
};

/// Handles `--metrics-out [path]` (default `BENCH_<name>.json`),
/// `--trace [path]` (default `BENCH_<name>.trace.jsonl`), and
/// `--trace-capacity N` (ring size in events; the 2^18 default overflows
/// around n=2000 in bench_scale), applies SGXP2P_LOG_LEVEL, and enables the
/// trace ring when requested. Call first thing in main(); pair with
/// finish_obs() before returning.
inline ObsOptions parse_obs(int argc, char** argv,
                            const std::string& bench_name) {
  Logger::instance().init_from_env();
  ObsOptions o;
  o.bench = bench_name;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto take_path = [&](const std::string& fallback) {
      if (i + 1 < argc && argv[i + 1][0] != '-') return std::string(argv[++i]);
      return fallback;
    };
    if (arg == "--metrics-out") {
      o.metrics_path = take_path("BENCH_" + bench_name + ".json");
    } else if (arg == "--trace") {
      o.trace_path = take_path("BENCH_" + bench_name + ".trace.jsonl");
    } else if (arg == "--trace-capacity" && i + 1 < argc) {
      o.trace_capacity = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
      if (o.trace_capacity == 0) {
        o.trace_capacity = obs::TraceRecorder::kDefaultCapacity;
      }
    }
  }
  if (!o.trace_path.empty()) {
    obs::TraceRecorder::global().enable(o.trace_capacity);
  }
  return o;
}

/// Writes the metrics snapshot (`{"bench":…,"metrics":…}`) and the JSONL
/// trace to the paths chosen by parse_obs().
inline void finish_obs(const ObsOptions& o) {
  if (!o.metrics_path.empty()) {
    std::string json = "{\"bench\":\"" + obs::json_escape(o.bench) +
                       "\",\"metrics\":" +
                       obs::MetricsRegistry::current().to_json() + "}\n";
    std::FILE* f = std::fopen(o.metrics_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   o.metrics_path.c_str());
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\nmetrics snapshot written to %s\n",
                  o.metrics_path.c_str());
    }
  }
  if (!o.trace_path.empty()) {
    const auto& tr = obs::TraceRecorder::global();
    if (tr.dropped() > 0) {
      std::fprintf(stderr,
                   "warning: trace ring dropped %llu events; timeline is "
                   "truncated (raise --trace-capacity)\n",
                   static_cast<unsigned long long>(tr.dropped()));
    }
    if (!tr.write_file(o.trace_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n", o.trace_path.c_str());
    } else {
      std::printf("trace (%zu events) written to %s\n", tr.size(),
                  o.trace_path.c_str());
    }
  }
}

}  // namespace sgxp2p::bench
