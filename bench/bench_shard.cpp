// bench_shard — sharded epoch sweep: committee election + committee-local
// ERB + tree dissemination at n up to 100,000 nodes.
//
// The clique protocols cost O(n) messages per node and O(n²) total; the
// shard overlay (src/shard/, docs/SHARDING.md) runs the full ERB machinery
// only inside c = O(log n) sized committees and stitches the per-committee
// digests through a constant-fanout tree, so per-node message cost is
// O(c·m) = O(log² n). This bench proves that scaling end to end:
//
//  1. Sweep: one full epoch at each n (accounted channel mode, sparse
//     setup — the testbed bootstrap is told each node has no pre-wired
//     out-neighbors, so neither setup nor the network's FIFO state is
//     O(n²)). Per point: wall clock, rounds, total messages, messages per
//     node, bytes, agreement/validity oracles, allocated FIFO/sink slots,
//     peak RSS.
//  2. Sublinearity gate (printed + exit code): msgs/node at the largest n
//     must be ≤ 2× msgs/node at the smallest — a 10× n increase may buy at
//     most one committee-size increment, not proportional traffic.
//  3. Engine agreement: the epoch digest at the cross-check size must be
//     byte-identical across the timer-wheel, reference-heap, and parallel
//     (Δ-lockstep) engines.
//
//   bench_shard                 # full sweep: n ∈ {10000, 100000}
//   bench_shard --quick         # CI mode: n ∈ {2000, 10000}
//   bench_shard --n 500,5000    # override the sweep points
//   bench_shard --epochs 2      # chained epochs per point (default 1)
//   bench_shard --engine wheel  # wheel|parallel sweep engine (default wheel)
//   bench_shard --jobs 8        # worker count for --engine parallel
//   bench_shard --metrics-out [path]   # BENCH_shard.json
//
// Exit 0 iff every point's oracles pass, the engines agree, and the
// sublinearity gate holds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/pool.hpp"
#include "shard/coordinator.hpp"

namespace {

using namespace sgxp2p;

/// Cumulative process peak RSS in KiB (Linux VmHWM; 0 where unavailable).
long peak_rss_kb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atol(line.c_str() + 6);
    }
  }
  return 0;
}

struct PointResult {
  std::uint32_t n = 0;
  std::uint32_t committees = 0;
  std::uint32_t committee_size = 0;
  std::uint32_t rounds = 0;
  double wall_s = 0;
  double virt_s = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::size_t fifo_slots = 0;
  std::size_t sink_slots = 0;
  bool ok = false;  // every epoch's termination+agreement+validity
  Bytes digest;     // last epoch's agreed global digest
  long rss_kb = 0;
  std::unique_ptr<obs::MetricsRegistry> registry;

  [[nodiscard]] double msgs_per_node() const {
    return n > 0 ? static_cast<double>(messages) / n : 0;
  }
};

PointResult run_point(std::uint32_t n, std::uint64_t epochs,
                      sim::SimEngine engine, std::uint32_t jobs = 0) {
  PointResult out;
  out.n = n;
  out.registry = std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry::ScopedCurrent bind(*out.registry);
  obs::BufferPool::local().clear();  // cold pool per point

  sim::TestbedConfig cfg =
      bench::bench_config(n, 1, protocol::ChannelMode::kAccounted);
  cfg.engine = engine;
  cfg.jobs = jobs;
  // Sharded deployment: no pre-wired clique. Accounted channels need no
  // per-peer link state, so the bootstrap stays O(n) and FIFO slots grow
  // with pairs that actually talk (committee-mates + tree reps).
  cfg.setup_peers = [](NodeId) { return std::vector<NodeId>{}; };
  sim::Testbed bed(cfg);
  bed.build(shard::ShardCoordinator::make_factory());
  bed.start();

  shard::ShardConfig scfg;
  scfg.epochs = epochs;
  shard::ShardCoordinator coord(bed, std::move(scfg));

  auto t0 = std::chrono::steady_clock::now();
  const std::vector<shard::EpochSummary> summaries = coord.run_all();
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  out.committees =
      static_cast<std::uint32_t>(coord.election().committees().size());
  out.committee_size = coord.election().committee_size();
  out.rounds = bed.rounds_run();
  out.messages = bed.network().meter().messages();
  out.bytes = bed.network().meter().bytes();
  out.virt_s = to_seconds(bed.simulator().now() - bed.start_time());
  out.ok = coord.all_ok() && !summaries.empty();
  if (!summaries.empty()) out.digest = summaries.back().global_digest;
  bed.network().publish_capacity_gauges();
  out.fifo_slots = bed.network().fifo_pair_slots();
  out.sink_slots = bed.network().sink_slots();
  out.rss_kb = peak_rss_kb();
  return out;
}

void print_row(const PointResult& r) {
  std::printf(
      "%7u %5u %4u %6u %9.2f %7.1f %12llu %10.1f %8.2f %10zu %8.1f  %s\n",
      r.n, r.committees, r.committee_size, r.rounds, r.wall_s, r.virt_s,
      static_cast<unsigned long long>(r.messages), r.msgs_per_node(),
      static_cast<double>(r.bytes) / (1024.0 * 1024.0), r.fifo_slots,
      static_cast<double>(r.rss_kb) / 1024.0,
      r.ok ? "oracles OK" : "ORACLE FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsOptions obs_opts = bench::parse_obs(argc, argv, "shard");
  bool quick = false;
  std::uint64_t epochs = 1;
  sim::SimEngine sweep_engine = sim::SimEngine::kWheel;
  std::uint32_t jobs = 8;
  std::vector<std::uint32_t> ns_override;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      long v = std::atol(argv[++i]);
      if (v > 0) epochs = static_cast<std::uint64_t>(v);
    }
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      if (std::strcmp(argv[++i], "parallel") == 0) {
        sweep_engine = sim::SimEngine::kParallel;
      }
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) jobs = static_cast<std::uint32_t>(v);
    }
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) ns_override.push_back(static_cast<std::uint32_t>(v));
        p = (*end == ',') ? end + 1 : end;
      }
    }
  }

  std::vector<std::uint32_t> ns =
      quick ? std::vector<std::uint32_t>{2000, 10000}
            : std::vector<std::uint32_t>{10000, 100000};
  if (!ns_override.empty()) ns = ns_override;

  std::printf("sharded epochs: committee ERB + tree dissemination, "
              "accounted mode, %llu epoch(s)/point\n",
              static_cast<unsigned long long>(epochs));
  std::printf("%7s %5s %4s %6s %9s %7s %12s %10s %8s %10s %8s\n", "n", "K",
              "c", "rnds", "wall_s", "virt_s", "msgs", "msgs/node", "MB",
              "fifo_slot", "rss_MB");

  bool all_ok = true;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  std::vector<PointResult> points;
  const std::uint32_t sweep_jobs =
      sweep_engine == sim::SimEngine::kParallel ? jobs : 0;
  for (std::uint32_t n : ns) {
    PointResult r = run_point(n, epochs, sweep_engine, sweep_jobs);
    all_ok = all_ok && r.ok;
    print_row(r);
    registries.push_back(std::move(r.registry));
    points.push_back(std::move(r));
  }

  // Engine agreement at a size the reference heap handles comfortably: the
  // agreed epoch digest — a hash over every committee's accepted values —
  // must be byte-identical, which transitively pins election, ERB message
  // ordering, and the dissemination tree across both engines.
  const std::uint32_t check_n = std::min<std::uint32_t>(ns.front(), 2000);
  PointResult wheel_chk = run_point(check_n, epochs, sim::SimEngine::kWheel);
  PointResult heap_chk = run_point(check_n, epochs, sim::SimEngine::kHeap);
  PointResult par_chk =
      run_point(check_n, epochs, sim::SimEngine::kParallel, jobs);
  auto agrees = [&wheel_chk](const PointResult& other) {
    return other.ok && wheel_chk.digest == other.digest &&
           wheel_chk.messages == other.messages &&
           wheel_chk.rounds == other.rounds;
  };
  const bool deterministic = wheel_chk.ok && !wheel_chk.digest.empty() &&
                             agrees(heap_chk) && agrees(par_chk);
  registries.push_back(std::move(wheel_chk.registry));
  std::printf(
      "\nengine agreement at n=%u, wheel vs heap vs parallel(jobs=%u) "
      "(digest/msgs/rounds): %s\n",
      check_n, jobs, deterministic ? "identical" : "MISMATCH");

  // Sublinearity gate: per-node message cost may roughly track the
  // committee-size increment (log n), never the 10× node-count jump.
  const double first = points.front().msgs_per_node();
  const double last = points.back().msgs_per_node();
  const double ratio = first > 0 ? last / first : 0;
  const bool sublinear = ratio > 0 && ratio <= 2.0;
  std::printf(
      "gate: msgs/node n=%u vs n=%u = %.1f vs %.1f (%.2fx, target <= 2x): "
      "%s\n",
      points.back().n, points.front().n, last, first, ratio,
      sublinear ? "target MET" : "target NOT met");
  std::printf("gate: agreement/validity oracles at every point: %s\n",
              all_ok ? "target MET" : "target NOT met");

  obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
  for (const auto& r : registries) obs::merge_snapshot(reg, r->snapshot());
  reg.gauge("bench.shard_max_n")
      .set(static_cast<std::int64_t>(points.back().n));
  reg.gauge("bench.shard_msgs_per_node_x100")
      .set(static_cast<std::int64_t>(last * 100.0));
  reg.gauge("bench.shard_sublinear_ratio_x100")
      .set(static_cast<std::int64_t>(ratio * 100.0));
  reg.gauge("bench.shard_oracles_ok").set(all_ok ? 1 : 0);
  reg.gauge("bench.shard_deterministic").set(deterministic ? 1 : 0);
  reg.gauge("bench.shard_peak_rss_kb")
      .set(static_cast<std::int64_t>(peak_rss_kb()));
  bench::finish_obs(obs_opts);
  return all_ok && deterministic && sublinear ? 0 : 1;
}
