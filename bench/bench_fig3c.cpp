// Figure 3c — ERB network traffic vs byzantine fraction (N = 512).
//
// Paper: traffic DECREASES as the byzantine fraction grows — eliminated
// nodes stop acknowledging and echoing (halt-on-divergence sanitizes the
// network mid-instance): 35 MB at fraction 1/4 versus 69 MB honest. The Th
// column is the quadratic over the surviving (echoing) population,
// c·(N−f)², normalized at the honest point.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "fig3c");
  using namespace sgxp2p;
  std::uint32_t n =
      static_cast<std::uint32_t>(bench::flag_int(argc, argv, "--n", 512));

  std::printf("=== Figure 3c: ERB traffic vs byzantine fraction (N=%u) ===\n\n",
              n);

  // Honest reference point (f = 0) for normalization.
  auto honest = bench::run_erb(n, 0, protocol::ChannelMode::kAccounted, 2024);
  double honest_mb = static_cast<double>(honest.bytes) / (1024.0 * 1024.0);
  double c = honest_mb / (static_cast<double>(n) * n);

  stats::Table table({"fraction", "f", "Ex (MB)", "Th c*(N-f)^2 (MB)",
                      "vs honest"});
  table.add_row({"0", "0", stats::fmt(honest_mb, 3), stats::fmt(honest_mb, 3),
                 "100.0%"});
  for (std::uint32_t denom = 256; denom >= 4; denom /= 2) {
    std::uint32_t f = n / denom;
    auto r =
        bench::run_erb(n, f, protocol::ChannelMode::kAccounted, 500 + denom);
    double mb = static_cast<double>(r.bytes) / (1024.0 * 1024.0);
    double th = c * static_cast<double>(n - f) * static_cast<double>(n - f);
    table.add_row({"1/" + std::to_string(denom), std::to_string(f),
                   stats::fmt(mb, 3), stats::fmt(th, 3),
                   stats::fmt(100.0 * mb / honest_mb, 1) + "%"});
  }
  table.print();
  std::printf(
      "\npaper reference: 69 MB honest → 35 MB at fraction 1/4 (a ~50%% "
      "drop); the same monotone decrease appears above.\n");
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
