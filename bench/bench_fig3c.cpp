// Figure 3c — ERB network traffic vs byzantine fraction (N = 512).
//
// Paper: traffic DECREASES as the byzantine fraction grows — eliminated
// nodes stop acknowledging and echoing (halt-on-divergence sanitizes the
// network mid-instance): 35 MB at fraction 1/4 versus 69 MB honest. The Th
// column is the quadratic over the surviving (echoing) population,
// c·(N−f)², normalized at the honest point.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "fig3c");
  using namespace sgxp2p;
  std::uint32_t n =
      static_cast<std::uint32_t>(bench::flag_int(argc, argv, "--n", 512));
  int jobs = bench::sweep_jobs(argc, argv);

  std::printf("=== Figure 3c: ERB traffic vs byzantine fraction (N=%u) ===\n\n",
              n);

  // Point 0 is the honest reference (f = 0) used for normalization; the
  // rest sweep the byzantine fraction 1/denom.
  std::vector<std::uint32_t> denoms;
  for (std::uint32_t denom = 256; denom >= 4; denom /= 2) {
    denoms.push_back(denom);
  }
  auto runs = bench::run_sweep<bench::RunStats>(
      denoms.size() + 1, jobs, [&](std::size_t i) {
        if (i == 0) {
          return bench::run_erb(n, 0, protocol::ChannelMode::kAccounted, 2024);
        }
        std::uint32_t denom = denoms[i - 1];
        return bench::run_erb(n, n / denom, protocol::ChannelMode::kAccounted,
                              500 + denom);
      });

  double honest_mb = static_cast<double>(runs[0].bytes) / (1024.0 * 1024.0);
  double c = honest_mb / (static_cast<double>(n) * n);

  stats::Table table({"fraction", "f", "Ex (MB)", "Th c*(N-f)^2 (MB)",
                      "vs honest"});
  table.add_row({"0", "0", stats::fmt(honest_mb, 3), stats::fmt(honest_mb, 3),
                 "100.0%"});
  for (std::size_t i = 0; i < denoms.size(); ++i) {
    std::uint32_t denom = denoms[i];
    std::uint32_t f = n / denom;
    double mb = static_cast<double>(runs[i + 1].bytes) / (1024.0 * 1024.0);
    double th = c * static_cast<double>(n - f) * static_cast<double>(n - f);
    table.add_row({"1/" + std::to_string(denom), std::to_string(f),
                   stats::fmt(mb, 3), stats::fmt(th, 3),
                   stats::fmt(100.0 * mb / honest_mb, 1) + "%"});
  }
  table.print();
  std::printf(
      "\npaper reference: 69 MB honest → 35 MB at fraction 1/4 (a ~50%% "
      "drop); the same monotone decrease appears above.\n");
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
