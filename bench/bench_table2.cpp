// Table 2 — round/communication complexity of distributed random number
// generation: basic ERNG (Algorithm 3) vs optimized ERNG (Algorithm 6),
// measured, plus the paper's literature rows.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "table2");
  using namespace sgxp2p;
  int max_n = bench::flag_int(argc, argv, "--max-n", 128);

  std::printf("=== Table 2: distributed RNG — measured comparison ===\n\n");

  stats::Table table(
      {"N", "variant", "rounds", "messages", "bytes", "term (s)"});
  std::vector<double> ns, basic_b, opt_b;
  for (std::uint32_t n = 16; n <= static_cast<std::uint32_t>(max_n); n *= 2) {
    auto basic =
        bench::run_erng_basic(n, protocol::ChannelMode::kAccounted, n);
    // Sampled two-phase cluster (the asymptotic configuration).
    auto opt = bench::run_erng_opt(n, /*force_fallback=*/false,
                                   protocol::ChannelMode::kAccounted, n);
    ns.push_back(n);
    basic_b.push_back(static_cast<double>(basic.bytes));
    opt_b.push_back(static_cast<double>(opt.bytes));
    table.add_row({std::to_string(n), "ERNG-basic", std::to_string(basic.rounds),
                   stats::fmt_int(basic.messages), stats::fmt_int(basic.bytes),
                   stats::fmt(basic.termination_s)});
    table.add_row({std::to_string(n), "ERNG-opt", std::to_string(opt.rounds),
                   stats::fmt_int(opt.messages), stats::fmt_int(opt.bytes),
                   stats::fmt(opt.termination_s)});
  }
  table.print();

  std::printf("\nmeasured byte-scaling exponents:\n");
  std::printf("  ERNG-basic: %.2f (theory O(N^3))\n",
              stats::loglog_slope(ns, basic_b));
  std::printf("  ERNG-opt  : %.2f (theory O(N log N); the sampled-cluster "
              "regime needs large N — at these sizes the dominant term is "
              "the O(N·γ) CHOSEN/FINAL flood)\n",
              stats::loglog_slope(ns, opt_b));

  std::printf("\nliterature rows (paper Table 2):\n");
  stats::Table lit({"protocol", "network", "rounds", "comm."});
  lit.add_row({"AS [20]", "6t+1", "O(N)", "O(N^3)"});
  lit.add_row({"AD14 [19]", "2t+1", "O(N)", "O(N^4)"});
  lit.add_row({"Basic ERNG (here)", "2t+1", "O(N)", "O(N^3)"});
  lit.add_row({"Optimized ERNG (here)", "3t+1", "O(log N)", "O(N log N)"});
  lit.print();
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
