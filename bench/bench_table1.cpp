// Table 1 — round and communication complexity of reliable broadcast.
//
// The paper's table cites literature bounds; its own row (ERB: min{f+2,t+2}
// rounds, O(N²) communication, N = 2t+1 resilience) is the one we can
// measure. We run ERB against the two baselines implemented here — RBsig
// (Algorithm 4, signature chains, the Dolev–Strong/PKI family) and RBearly
// (Algorithm 5, Perry–Toueg omission model with per-round liveness
// broadcast) — over a size sweep, report rounds/messages/bytes, and fit the
// byte-scaling exponents. The literature rows are reprinted for context.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "crypto/sha256.hpp"
#include "protocol/rb_early.hpp"
#include "protocol/rb_sig.hpp"
#include "stats/table.hpp"

namespace {

using namespace sgxp2p;

struct BaselineRun {
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

sim::NetworkConfig plain_net() {
  sim::NetworkConfig cfg;
  cfg.base_delay = milliseconds(500);
  cfg.max_jitter = milliseconds(500);
  return cfg;
}

BaselineRun run_rb_sig(std::uint32_t n) {
  const std::uint32_t t = (n - 1) / 2;
  sim::PlainBed bed(n, plain_net());
  bed.build([&](NodeId id) {
    Bytes seed =
        crypto::Sha256::hash_bytes(to_bytes("t1-" + std::to_string(id)));
    return std::make_unique<protocol::RbSigNode>(
        id, n, t, NodeId{0}, id == 0 ? to_bytes("m") : Bytes{}, seed);
  });
  std::vector<Bytes> pki;
  for (NodeId id = 0; id < n; ++id) {
    pki.push_back(bed.node_as<protocol::RbSigNode>(id).public_key());
  }
  for (NodeId id = 0; id < n; ++id) {
    bed.node_as<protocol::RbSigNode>(id).set_pki(pki);
  }
  bed.start();
  BaselineRun out;
  out.rounds = bed.run_rounds(t + 2, [&]() {
    for (NodeId id = 0; id < n; ++id) {
      if (!bed.node_as<protocol::RbSigNode>(id).result().decided) return false;
    }
    return true;
  });
  out.messages = bed.network().meter().messages();
  out.bytes = bed.network().meter().bytes();
  return out;
}

BaselineRun run_rb_early(std::uint32_t n, bool crash_initiator) {
  const std::uint32_t t = (n - 1) / 2;
  sim::PlainBed bed(n, plain_net());
  bed.build([&](NodeId id) {
    return std::make_unique<protocol::RbEarlyNode>(
        id, n, t, NodeId{0}, id == 0 ? to_bytes("m") : Bytes{});
  });
  if (crash_initiator) {
    bed.node_as<protocol::RbEarlyNode>(0).set_send_filter(
        [](NodeId) { return false; });
  }
  bed.start();
  BaselineRun out;
  out.rounds = bed.run_rounds(t + 2, [&]() {
    for (NodeId id = crash_initiator ? 1 : 0; id < n; ++id) {
      if (!bed.node_as<protocol::RbEarlyNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });
  out.messages = bed.network().meter().messages();
  out.bytes = bed.network().meter().bytes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "table1");
  int max_n = bench::flag_int(argc, argv, "--max-n", 64);

  std::printf("=== Table 1: reliable broadcast — measured comparison ===\n\n");
  std::printf("honest executions; N = 2t+1; bytes measured on the wire\n\n");

  stats::Table table({"N", "protocol", "rounds", "messages", "bytes"});
  std::vector<double> ns, erb_b, sig_b, early_b;
  for (std::uint32_t n = 8; n <= static_cast<std::uint32_t>(max_n); n *= 2) {
    auto erb = bench::run_erb(n, 0, protocol::ChannelMode::kAttested, n);
    auto sig = run_rb_sig(n);
    auto early = run_rb_early(n, /*crash_initiator=*/false);
    ns.push_back(n);
    erb_b.push_back(static_cast<double>(erb.bytes));
    sig_b.push_back(static_cast<double>(sig.bytes));
    early_b.push_back(static_cast<double>(early.bytes));
    table.add_row({std::to_string(n), "ERB (this paper)",
                   std::to_string(erb.rounds), stats::fmt_int(erb.messages),
                   stats::fmt_int(erb.bytes)});
    table.add_row({std::to_string(n), "RBsig (Alg. 4, PKI)",
                   std::to_string(sig.rounds), stats::fmt_int(sig.messages),
                   stats::fmt_int(sig.bytes)});
    table.add_row({std::to_string(n), "RBearly (Alg. 5, omission)",
                   std::to_string(early.rounds),
                   stats::fmt_int(early.messages),
                   stats::fmt_int(early.bytes)});
  }
  table.print();

  std::printf("\nmeasured byte-scaling exponents (log-log slope, honest runs):\n");
  std::printf("  ERB     : %.2f  — O(N^2) with ~100 B messages (Table 1 row "
              "'ERB')\n",
              stats::loglog_slope(ns, erb_b));
  std::printf("  RBsig   : %.2f  — honest runs carry short chains, so N^2 "
              "messages x multi-KB signatures; the O(N^3) of Table 1 is the "
              "adversarial long-chain worst case. Note the ~20x byte "
              "constant over ERB.\n",
              stats::loglog_slope(ns, sig_b));
  std::printf("  RBearly : %.2f  — O(N^2) *per round*; honest runs stop at 3 "
              "rounds. The O(N^3) of Table 1 is t faulty rounds; the f=1 "
              "comparison below shows the per-fault growth ERB avoids.\n",
              stats::loglog_slope(ns, early_b));

  // Under faults RBearly pays its per-round liveness broadcast for f+2
  // rounds; ERB's ACK-based active detection avoids it.
  std::printf("\ncrashed-initiator comparison at N = 33 (f = 1):\n");
  auto early_f = run_rb_early(33, /*crash_initiator=*/true);
  std::printf("  RBearly: rounds=%u messages=%llu bytes=%llu\n", early_f.rounds,
              static_cast<unsigned long long>(early_f.messages),
              static_cast<unsigned long long>(early_f.bytes));
  auto erb_f = bench::run_erb(33, 1, protocol::ChannelMode::kAttested, 9);
  std::printf("  ERB    : rounds=%u messages=%llu bytes=%llu\n", erb_f.rounds,
              static_cast<unsigned long long>(erb_f.messages),
              static_cast<unsigned long long>(erb_f.bytes));

  std::printf("\nliterature rows (paper Table 1, for context):\n");
  stats::Table lit({"protocol", "model", "network", "rounds", "comm."});
  lit.add_row({"PT [82]", "omission", "t+1", "min{f+2,t+1}", "O(N^3)"});
  lit.add_row({"PR [79]", "omission", "2t+1", "min{f+2,t+1}", "O(N^3)"});
  lit.add_row({"CT [41]", "omission", "2t+1", "min{f+2,t+1}", "O(N^2)"});
  lit.add_row({"PSL [81]", "byzantine", "3t+1", "t+1", "O(exp(N))"});
  lit.add_row({"BGP [28]", "byzantine", "3t+1", "min{f+2,t+1}", "O(exp(N))"});
  lit.add_row({"BG [26]", "byzantine", "4t+1", "t+1", "O(poly(N))"});
  lit.add_row({"GM [53,54]", "byzantine", "3t+1", "min{f+5,t+1}", "O(poly(N))"});
  lit.add_row({"AD15 [18]", "byzantine", "3t+1", "min{f+2,t+1}", "O(poly(N))"});
  lit.add_row({"AD14 [19]", "byzantine+sig", "2t+1", "3t+4", "O(N^4)"});
  lit.add_row({"ERB (here)", "byz + SGX", "2t+1", "min{f+2,t+2}", "O(N^2)"});
  lit.print();
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
