// bench_scale — event-engine scaling proof: one ERB broadcast at
// n ∈ {40, 200, 500, 1000, 2000}, timer wheel vs the reference heap.
//
// The paper evaluates at n ≤ 40 (Section 6); the ROADMAP north star needs
// orders of magnitude more. Two measurements per n:
//
//  1. Full stack: one accounted-mode ERB instance (t = 1, so every run
//     terminates in 3 rounds and the ~n² per-round deliveries dominate)
//     through both event engines — events/sec, wall-clock per simulated
//     round, peak RSS, buffer-pool reuse. Both engines must agree on every
//     virtual-time result (events fired, wire messages, rounds,
//     termination); the table prints the check.
//
//  2. Engine dispatch: a replay of the same round's *event schedule* —
//     identical timer and delivery pattern (INIT fan-out, per-node ECHO
//     broadcast timers, per-receipt ACKs, jittered arrivals, sealed-size
//     payloads) with a no-op receiver. With the protocol work (seal/open,
//     hashing, ACK construction — engine-independent by definition)
//     stripped away, this isolates exactly the subsystem the overhaul
//     replaced: schedule → queue → dispatch, closure-per-message malloc
//     vs typed pooled events. The ≥5× gate is measured here; the
//     full-stack ratio is reported alongside for honesty about end-to-end
//     wins.
//
//   bench_scale                 # full sweep incl. n=2000 + budget check
//   bench_scale --quick         # CI mode: n ∈ {40, 200, 1000}
//   bench_scale --n 500,1000    # override the sweep points
//   bench_scale --engine wheel  # wheel|heap|parallel|both (default both)
//   bench_scale --jobs 8        # worker count for --engine parallel
//   bench_scale --metrics-out [path]   # BENCH_scale.json / BENCH_parallel.json
//
// Gates (printed): engine-dispatch wheel ≥ 5× heap events/sec at n = 1000,
// and the n = 2000 full-stack run (full mode) completes within the printed
// wall-clock budget.
//
// --engine parallel switches to the kParallel evaluation: full-stack
// wheel-vs-parallel agreement rows over the sweep points, then the parallel
// dispatch gate — a timer-free compute-carrying schedule at n = 10000 (INIT
// fan-out, 32-wide pseudo-random ECHO storm, ACK backwash, an iterated-hash
// kernel per receipt) where kParallel with --jobs workers must reach ≥ 3×
// the serial wheel's events/sec. Virtual-time results must stay identical;
// the counters land in BENCH_parallel.json for the CI exact-compare.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <thread>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "obs/pool.hpp"

namespace {

using namespace sgxp2p;

constexpr double kBudget2000s = 120.0;  // n=2000 wall-clock budget (full mode)

/// Cumulative process peak RSS in KiB (Linux VmHWM; 0 where unavailable).
long peak_rss_kb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atol(line.c_str() + 6);
    }
  }
  return 0;
}

struct PointResult {
  std::uint32_t n = 0;
  sim::SimEngine engine = sim::SimEngine::kWheel;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint32_t rounds = 0;
  double virt_s = 0;
  bool decided = false;
  double pool_hit_pct = 0;
  long rss_kb = 0;
  std::unique_ptr<obs::MetricsRegistry> registry;

  [[nodiscard]] double events_per_s() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  }
};

PointResult run_point(std::uint32_t n, sim::SimEngine engine,
                      std::uint32_t jobs = 0) {
  PointResult out;
  out.n = n;
  out.engine = engine;
  out.registry = std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry::ScopedCurrent bind(*out.registry);
  // Cold pool per point: reuse within a run is measured, not inherited.
  // The heap rows measure the full pre-overhaul stack, so they also run
  // with recycling off (the seed allocated fresh buffers per message);
  // registry counters are recycling-independent, so the engine-agreement
  // check below still compares like with like.
  obs::BufferPool::local().clear();
  obs::BufferPool::local().set_recycling(engine != sim::SimEngine::kHeap);

  sim::TestbedConfig cfg =
      bench::bench_config(n, 1, protocol::ChannelMode::kAccounted);
  cfg.t = 1;  // termination after t+2 = 3 rounds; n² fan-out dominates
  cfg.engine = engine;
  cfg.jobs = jobs;
  sim::Testbed bed(cfg);

  Bytes payload = to_bytes("scale benchmark broadcast payload");
  bed.build([&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                protocol::PeerConfig pc,
                const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErbNode>(platform, id, host, pc, ias,
                                               NodeId{0},
                                               id == 0 ? payload : Bytes{});
  });

  auto honest_done = [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  };

  auto t0 = std::chrono::steady_clock::now();
  bed.start();
  out.rounds = bed.run_rounds(cfg.effective_t() + 4, honest_done);
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();

  out.events = out.registry->counter("sim.events_fired").value();
  out.messages = bed.network().meter().messages();
  out.decided = true;
  SimTime latest = 0;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
    if (!r.decided) out.decided = false;
    latest = std::max(latest, r.decided_at);
  }
  out.virt_s = to_seconds(latest - bed.start_time());

  const auto& ps = obs::BufferPool::local().stats();
  out.pool_hit_pct = ps.acquires > 0
                         ? 100.0 * static_cast<double>(ps.hits) /
                               static_cast<double>(ps.acquires)
                         : 0;
  obs::BufferPool::local().set_recycling(true);
  out.rss_kb = peak_rss_kb();
  // Stamped only after the agreement-relevant numbers are read: window and
  // steal counts are opt-in extras, never part of the equivalence surface.
  if (engine == sim::SimEngine::kParallel) {
    bed.simulator().publish_parallel_stats(*out.registry);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Engine dispatch: replay one ERB round's event schedule with no protocol.
//
// Traffic shape mirrors the full-stack run at the same n: node 0 fans INIT
// out to n−1 peers with jittered arrivals; each peer's first receipt arms a
// timer (the std::function lane both engines share) at the next round
// boundary that broadcasts ECHO to the other n−1; every INIT/ECHO receipt
// answers with a jittered ACK. Message classes are distinguished by
// registering one delivery handler per class, so deliveries carry no
// payload ballast: with ~n² buffers in flight both the pool and plain
// malloc land in cold memory, making payload traffic an engine-independent
// cost that belongs to the full-stack rows (the pool column there).  What
// remains is exactly the subsystem the overhaul replaced — schedule →
// queue → dispatch, per-message closure allocation vs typed events.

struct DispatchResult {
  double wall_s = 0;
  std::uint64_t events = 0;
  SimTime end_time = 0;

  [[nodiscard]] double events_per_s() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  }
};

DispatchResult run_dispatch(std::uint32_t n, sim::SimEngine engine) {
  constexpr SimTime kRound = 1000;      // bench round length, ms
  constexpr SimTime kBase = 500;        // bench base delay
  constexpr SimTime kJitterBound = 501; // bench max jitter + 1

  DispatchResult out;
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);

  sim::Simulator simulator(reg, engine);
  Rng rng(0x5ca1ab1e);
  std::vector<char> echoed(n, 0);

  auto t0 = std::chrono::steady_clock::now();
  auto arrival = [&]() {
    return simulator.now() + kBase +
           static_cast<SimTime>(rng.next_below(kJitterBound));
  };
  std::uint32_t on_ack = simulator.add_delivery_handler([](sim::Delivery&&) {});
  std::uint32_t on_msg = 0;  // INIT and ECHO: ack, arm echo timer on first
  on_msg = simulator.add_delivery_handler([&](sim::Delivery&& d) {
    const NodeId self = d.to;
    simulator.schedule_delivery(arrival(), on_ack,
                                sim::Delivery{self, d.from, 0, {}, nullptr});
    if (echoed[self] == 0) {
      echoed[self] = 1;
      // First receipt arms the next-round ECHO broadcast (timer lane).
      const SimTime at = ((simulator.now() / kRound) + 1) * kRound;
      simulator.schedule(at, [&simulator, &arrival, &on_msg, self, n]() {
        for (NodeId to = 0; to < n; ++to) {
          if (to != self) {
            simulator.schedule_delivery(arrival(), on_msg,
                                        sim::Delivery{self, to, 0, {}, nullptr});
          }
        }
      });
    }
  });

  echoed[0] = 1;  // the initiator does not echo
  for (NodeId to = 1; to < n; ++to) {
    simulator.schedule_delivery(arrival(), on_msg,
                                sim::Delivery{0, to, 0, {}, nullptr});
  }
  simulator.run();

  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.events = reg.counter("sim.events_fired").value();
  out.end_time = simulator.now();
  return out;
}

// ---------------------------------------------------------------------------
// Parallel dispatch: a timer-free, compute-carrying schedule for the
// kParallel gate. Unlike run_dispatch (which isolates queue overhead), this
// workload gives the worker lanes real per-event work so the conservative
// windows have something to parallelize:
//
//   node 0 fans INIT to n−1 peers; each INIT receipt runs the hash kernel
//   and ECHOes to kParFan pseudo-random peers; each ECHO receipt runs the
//   kernel and ACKs its sender; each ACK receipt runs the kernel. All
//   arrival jitter is a pure hash of (from, to, now) — no shared RNG, so
//   workers draw no contended state — and the min delay equals the
//   registered lookahead, keeping every emission outside its own window.
//   Fan-out targets are hash-spread, so no node becomes a merge hotspot.

constexpr std::uint32_t kParFan = 32;    // ECHOes per INIT receipt
constexpr int kParKernelIters = 16;      // chained hashes per receipt

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ParallelDispatchResult {
  double wall_s = 0;
  std::uint64_t events = 0;
  SimTime end_time = 0;
  sim::Simulator::ParallelStats pstats;

  [[nodiscard]] double events_per_s() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  }
};

ParallelDispatchResult run_parallel_dispatch(std::uint32_t n,
                                             sim::SimEngine engine,
                                             std::uint32_t jobs) {
  constexpr SimTime kBase = 500;           // min delay = lookahead
  constexpr std::uint64_t kJitterBound = 501;

  ParallelDispatchResult out;
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Simulator simulator(reg, engine);
  simulator.set_jobs(jobs);
  simulator.set_lookahead(kBase);

  // Per-node accumulator: each slot is written only from its own node's
  // events (one task lane per window), so worker writes never race.
  std::vector<std::uint64_t> sink(n, 0);

  auto arrival = [](NodeId from, NodeId to, SimTime now) {
    const std::uint64_t h = mix64((std::uint64_t{from} << 40) ^
                                  (std::uint64_t{to} << 20) ^
                                  static_cast<std::uint64_t>(now));
    return now + kBase + static_cast<SimTime>(h % kJitterBound);
  };
  auto kernel = [&sink](NodeId self, NodeId from) {
    std::uint8_t buf[16];
    store_le64(buf, (std::uint64_t{self} << 32) | from);
    store_le64(buf + 8, sink[self]);
    crypto::Sha256Digest d = crypto::Sha256::hash(ByteView(buf, sizeof buf));
    for (int i = 1; i < kParKernelIters; ++i) {
      d = crypto::Sha256::hash(ByteView(d.data(), d.size()));
    }
    sink[self] ^= load_le64(d.data());
  };

  std::uint32_t on_ack = simulator.add_delivery_handler(
      [&kernel](sim::Delivery&& d) { kernel(d.to, d.from); });
  std::uint32_t on_echo = simulator.add_delivery_handler(
      [&](sim::Delivery&& d) {
        kernel(d.to, d.from);
        simulator.schedule_delivery(
            arrival(d.to, d.from, simulator.now()), on_ack,
            sim::Delivery{d.to, d.from, 0, {}, nullptr});
      });
  std::uint32_t on_init = simulator.add_delivery_handler(
      [&](sim::Delivery&& d) {
        const NodeId self = d.to;
        kernel(self, d.from);
        for (std::uint32_t i = 0; i < kParFan; ++i) {
          const auto to = static_cast<NodeId>(
              mix64(std::uint64_t{self} * kParFan + i) % n);
          if (to == self) continue;
          simulator.schedule_delivery(
              arrival(self, to, simulator.now()), on_echo,
              sim::Delivery{self, to, 0, {}, nullptr});
        }
      });

  auto t0 = std::chrono::steady_clock::now();
  for (NodeId to = 1; to < n; ++to) {
    simulator.schedule_delivery(arrival(0, to, 0), on_init,
                                sim::Delivery{0, to, 0, {}, nullptr});
  }
  simulator.run();
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.events = reg.counter("sim.events_fired").value();
  out.end_time = simulator.now();
  out.pstats = simulator.parallel_stats();
  return out;
}

void print_row(const PointResult& r, double ratio) {
  std::printf("%6u  %-6s %9.3f %12llu %12.0f %8.2fx %9llu %6u %7.1f %6.1f%% %8.1f  %s\n",
              r.n, sim::engine_name(r.engine), r.wall_s,
              static_cast<unsigned long long>(r.events), r.events_per_s(),
              ratio, static_cast<unsigned long long>(r.messages), r.rounds,
              r.virt_s, r.pool_hit_pct,
              static_cast<double>(r.rss_kb) / 1024.0,
              r.decided ? "decided" : "UNDECIDED");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsOptions obs_opts = bench::parse_obs(argc, argv, "scale");
  bool quick = false;
  bool run_wheel = true;
  bool run_heap = true;
  bool run_parallel = false;
  std::uint32_t jobs = 8;
  std::vector<std::uint32_t> ns_override;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      std::string which = argv[++i];
      if (which == "parallel") {
        run_parallel = true;
        run_heap = false;
      } else {
        run_wheel = which != "heap";
        run_heap = which != "wheel";
      }
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) jobs = static_cast<std::uint32_t>(v);
    }
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) ns_override.push_back(static_cast<std::uint32_t>(v));
        p = (*end == ',') ? end + 1 : end;
      }
    }
  }

  std::vector<std::uint32_t> ns =
      quick ? std::vector<std::uint32_t>{40, 200, 1000}
            : std::vector<std::uint32_t>{40, 200, 500, 1000, 2000};
  if (!ns_override.empty()) ns = ns_override;

  if (run_parallel) {
    std::printf("parallel engine: kParallel (jobs=%u) vs serial wheel, "
                "accounted ERB broadcast, t=1\n", jobs);
    std::printf("%6s  %-8s %9s %12s %12s %9s %9s %6s %7s %7s %8s\n", "n",
                "engine", "wall_s", "events", "events/s", "vs wheel", "msgs",
                "rnds", "virt_s", "pool", "rss_MB");
    bool deterministic = true;
    bool all_decided = true;
    double fullstack_ratio = 0;
    std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
    for (std::uint32_t n : ns) {
      PointResult wheel = run_point(n, sim::SimEngine::kWheel);
      PointResult par = run_point(n, sim::SimEngine::kParallel, jobs);
      all_decided = all_decided && wheel.decided && par.decided;
      const double ratio = wheel.events_per_s() > 0
                               ? par.events_per_s() / wheel.events_per_s()
                               : 0;
      fullstack_ratio = ratio;  // the largest-n head-to-head is the headline
      const bool agree = wheel.events == par.events &&
                         wheel.messages == par.messages &&
                         wheel.rounds == par.rounds &&
                         wheel.virt_s == par.virt_s;
      deterministic = deterministic && agree;
      print_row(wheel, 1.0);
      print_row(par, ratio);
      if (!agree) std::printf("        ^^ ENGINE MISMATCH at n=%u\n", n);
      registries.push_back(std::move(wheel.registry));
      registries.push_back(std::move(par.registry));
    }

    const std::uint32_t gate_n = 10000;
    std::printf("\nparallel dispatch: n=%u INIT/ECHO/ACK schedule, "
                "%d-hash kernel per receipt, fan-out %u\n",
                gate_n, kParKernelIters, kParFan);
    std::printf("%6s  %-8s %9s %12s %12s %9s\n", "n", "engine", "wall_s",
                "events", "events/s", "vs wheel");
    auto best_par = [gate_n](sim::SimEngine eng, std::uint32_t j) {
      ParallelDispatchResult best = run_parallel_dispatch(gate_n, eng, j);
      for (int rep = 1; rep < 3; ++rep) {
        ParallelDispatchResult r = run_parallel_dispatch(gate_n, eng, j);
        if (r.wall_s < best.wall_s) best = r;
      }
      return best;
    };
    ParallelDispatchResult dw = best_par(sim::SimEngine::kWheel, 1);
    ParallelDispatchResult dp = best_par(sim::SimEngine::kParallel, jobs);
    const double gate_ratio =
        dw.events_per_s() > 0 ? dp.events_per_s() / dw.events_per_s() : 0;
    const bool dispatch_agree =
        dw.events == dp.events && dw.end_time == dp.end_time;
    deterministic = deterministic && dispatch_agree;
    std::printf("%6u  %-8s %9.3f %12llu %12.0f %9.2fx\n", gate_n, "wheel",
                dw.wall_s, static_cast<unsigned long long>(dw.events),
                dw.events_per_s(), 1.0);
    std::printf("%6u  %-8s %9.3f %12llu %12.0f %9.2fx   (%llu windows, "
                "%llu steals)\n",
                gate_n, "parallel", dp.wall_s,
                static_cast<unsigned long long>(dp.events),
                dp.events_per_s(), gate_ratio,
                static_cast<unsigned long long>(dp.pstats.windows),
                static_cast<unsigned long long>(dp.pstats.steals));
    if (!dispatch_agree) std::printf("        ^^ DISPATCH ENGINE MISMATCH\n");

    std::printf("\nengine agreement (events/msgs/rounds/virtual time): %s\n",
                deterministic ? "identical" : "MISMATCH");
    std::printf(
        "gate: parallel dispatch vs wheel at n=%u, jobs=%u = %.2fx "
        "(target >= 3x): %s\n",
        gate_n, jobs, gate_ratio,
        gate_ratio >= 3.0 ? "target MET" : "target MISSED");
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < jobs) {
      std::printf(
          "note: %u hardware threads for %u workers — the wall-clock gate "
          "is meaningful on hosts with >= %u cores (CI release-perf)\n",
          hw, jobs, jobs);
    }
    if (fullstack_ratio > 0) {
      std::printf("full-stack ERB at n=%u = %.2fx vs wheel\n", ns.back(),
                  fullstack_ratio);
    }
    if (!all_decided) std::printf("WARNING: some runs did not decide\n");

    obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
    for (const auto& r : registries) obs::merge_snapshot(reg, r->snapshot());
    reg.gauge("bench.parallel_jobs").set(static_cast<std::int64_t>(jobs));
    reg.gauge("bench.parallel_gate_ratio_x100")
        .set(static_cast<std::int64_t>(gate_ratio * 100.0));
    reg.gauge("bench.parallel_fullstack_ratio_x100")
        .set(static_cast<std::int64_t>(fullstack_ratio * 100.0));
    reg.gauge("bench.parallel_deterministic").set(deterministic ? 1 : 0);
    reg.gauge("bench.parallel_dispatch_windows")
        .set(static_cast<std::int64_t>(dp.pstats.windows));
    reg.gauge("bench.parallel_peak_rss_kb")
        .set(static_cast<std::int64_t>(peak_rss_kb()));
    bench::finish_obs(obs_opts);
    return deterministic && all_decided ? 0 : 1;
  }

  // The reference heap is quadratic-unfriendly past n=1000; the gate only
  // needs the head-to-head there.
  const std::uint32_t heap_max_n = 1000;

  std::printf("event-engine scaling: one accounted ERB broadcast, t=1\n");
  std::printf("%6s  %-6s %9s %12s %12s %8s %9s %6s %7s %7s %8s\n", "n",
              "engine", "wall_s", "events", "events/s", "vs heap", "msgs",
              "rnds", "virt_s", "pool", "rss_MB");

  double gate_ratio = 0;
  double wall_2000 = -1;
  bool deterministic = true;
  bool all_decided = true;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;

  for (std::uint32_t n : ns) {
    PointResult wheel;
    if (run_wheel) {
      wheel = run_point(n, sim::SimEngine::kWheel);
      all_decided = all_decided && wheel.decided;
      if (n == 2000) wall_2000 = wheel.wall_s;
    }

    if (run_heap && n <= heap_max_n) {
      PointResult heap = run_point(n, sim::SimEngine::kHeap);
      all_decided = all_decided && heap.decided;
      if (run_wheel) {
        double ratio = heap.events_per_s() > 0
                           ? wheel.events_per_s() / heap.events_per_s()
                           : 0;
        if (n == 1000) gate_ratio = ratio;
        bool agree = wheel.events == heap.events &&
                     wheel.messages == heap.messages &&
                     wheel.rounds == heap.rounds &&
                     wheel.virt_s == heap.virt_s;
        deterministic = deterministic && agree;
        print_row(wheel, ratio);
        if (!agree) std::printf("        ^^ ENGINE MISMATCH at n=%u\n", n);
      }
      print_row(heap, 1.0);
      registries.push_back(std::move(heap.registry));
    } else if (run_wheel) {
      print_row(wheel, 0.0);
    }
    if (run_wheel) registries.push_back(std::move(wheel.registry));
  }

  double dispatch_ratio = 0;
  const std::uint32_t gate_n = 1000;
  if (run_wheel && run_heap &&
      std::find(ns.begin(), ns.end(), gate_n) != ns.end()) {
    std::printf("\nengine dispatch: same n=%u round event schedule, no-op "
                "receiver (engine isolated)\n", gate_n);
    std::printf("%6s  %-6s %9s %12s %12s %8s\n", "n", "engine", "wall_s",
                "events", "events/s", "vs heap");
    // Best-of-3 per engine: a single rep is at the mercy of scheduler noise
    // on shared CI machines, and the virtual run is deterministic, so the
    // fastest rep is the least-perturbed measurement of the same work.
    auto best_dispatch = [](std::uint32_t points, sim::SimEngine eng) {
      DispatchResult best = run_dispatch(points, eng);
      for (int rep = 1; rep < 3; ++rep) {
        DispatchResult r = run_dispatch(points, eng);
        if (r.wall_s < best.wall_s) best = r;
      }
      return best;
    };
    DispatchResult dw = best_dispatch(gate_n, sim::SimEngine::kWheel);
    DispatchResult dh = best_dispatch(gate_n, sim::SimEngine::kHeap);
    dispatch_ratio =
        dh.events_per_s() > 0 ? dw.events_per_s() / dh.events_per_s() : 0;
    bool agree = dw.events == dh.events && dw.end_time == dh.end_time;
    deterministic = deterministic && agree;
    std::printf("%6u  %-6s %9.3f %12llu %12.0f %8.2fx\n", gate_n, "wheel",
                dw.wall_s, static_cast<unsigned long long>(dw.events),
                dw.events_per_s(), dispatch_ratio);
    std::printf("%6u  %-6s %9.3f %12llu %12.0f %8.2fx\n", gate_n, "heap",
                dh.wall_s, static_cast<unsigned long long>(dh.events),
                dh.events_per_s(), 1.0);
    if (!agree) std::printf("        ^^ DISPATCH ENGINE MISMATCH\n");
  }

  std::printf("\nengine agreement (events/msgs/rounds/virtual time): %s\n",
              deterministic ? "identical" : "MISMATCH");
  if (dispatch_ratio > 0) {
    std::printf(
        "gate: engine dispatch wheel vs heap at n=%u = %.2fx (target >= 5x): "
        "%s\n",
        gate_n, dispatch_ratio,
        dispatch_ratio >= 5.0 ? "target MET" : "target NOT met");
  }
  if (gate_ratio > 0) {
    std::printf(
        "full-stack ERB round at n=1000 = %.2fx (seal/open, hashing and ACK "
        "construction are engine-independent)\n",
        gate_ratio);
  }
  if (wall_2000 >= 0) {
    std::printf("gate: n=2000 round budget %.0f s: %.1f s: %s\n", kBudget2000s,
                wall_2000, wall_2000 <= kBudget2000s ? "budget MET"
                                                     : "budget EXCEEDED");
  } else {
    std::printf("gate: n=2000 budget check skipped (--quick)\n");
  }
  if (!all_decided) std::printf("WARNING: some runs did not decide\n");

  // Fold every run into the process registry for --metrics-out, then stamp
  // the headline numbers as bench.* gauges.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
  for (const auto& r : registries) obs::merge_snapshot(reg, r->snapshot());
  reg.gauge("bench.scale_max_n").set(static_cast<std::int64_t>(ns.back()));
  reg.gauge("bench.scale_gate_ratio_x100")
      .set(static_cast<std::int64_t>(dispatch_ratio * 100.0));
  reg.gauge("bench.scale_fullstack_ratio_x100")
      .set(static_cast<std::int64_t>(gate_ratio * 100.0));
  reg.gauge("bench.scale_deterministic").set(deterministic ? 1 : 0);
  reg.gauge("bench.scale_peak_rss_kb")
      .set(static_cast<std::int64_t>(peak_rss_kb()));
  bench::finish_obs(obs_opts);
  return deterministic && all_decided ? 0 : 1;
}
