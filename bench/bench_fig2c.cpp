// Figure 2c — ERB termination time vs byzantine fraction (N = 512).
//
// Paper: with the worst-case strategy — byzantine nodes form a chain, each
// relaying the broadcast to exactly one other byzantine node per round
// before being eliminated by halt-on-divergence — termination grows
// linearly with the number of actively byzantine nodes f (389 s at f = N/4
// versus 4 s honest, on their testbed). Round complexity is min{f+2, t+2}.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "fig2c");
  using namespace sgxp2p;
  std::uint32_t n =
      static_cast<std::uint32_t>(bench::flag_int(argc, argv, "--n", 512));
  int jobs = bench::sweep_jobs(argc, argv);

  std::printf("=== Figure 2c: ERB termination vs byzantine fraction (N=%u) ===\n",
              n);
  std::printf("byzantine strategy: Section 6.3 chain (relay to one byzantine "
              "node per round, release to one honest node at the end)\n\n");

  std::vector<std::uint32_t> denoms;
  for (std::uint32_t denom = n; denom >= 4; denom /= 2) denoms.push_back(denom);

  auto runs = bench::run_sweep<bench::RunStats>(
      denoms.size(), jobs, [&](std::size_t i) {
        std::uint32_t denom = denoms[i];
        // fraction 1/denom of the network is byzantine
        return bench::run_erb(n, n / denom, protocol::ChannelMode::kAccounted,
                              1000 + denom);
      });

  stats::Table table({"fraction", "f", "rounds", "termination (s)",
                      "f+2 (theory)"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::uint32_t denom = denoms[i];
    std::uint32_t f = n / denom;
    const auto& r = runs[i];
    table.add_row({"1/" + std::to_string(denom), std::to_string(f),
                   std::to_string(r.rounds), stats::fmt(r.termination_s),
                   std::to_string(f + 2)});
  }
  table.print();
  std::printf(
      "\npaper reference: linear growth; 389 s at fraction 1/4 vs 4 s "
      "honest (their Δ). With Δ = 1 s our worst case is (f+2)·2 s = %u s at "
      "f = %u — same linear shape.\n",
      (n / 4 + 2) * 2, n / 4);
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
