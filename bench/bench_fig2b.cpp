// Figure 2b — ERNG termination time vs number of peers.
//
// Paper: honest-case ERNG termination is nearly constant up to ~2^7 and then
// rises — the rise being their shared 128 MB/s DeterLab link saturating
// under the protocol's (near-)cubic traffic, not a protocol property. We
// report both the pure-protocol virtual time (constant, per the early-output
// rule) and a bandwidth-adjusted time that reinstates the testbed artifact
// by serializing each round's bytes through a 128 MB/s bottleneck.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "fig2b");
  using namespace sgxp2p;
  int max_exp = bench::flag_int(argc, argv, "--max-exp", 7);
  int jobs = bench::sweep_jobs(argc, argv);
  const double kLinkBytesPerSec = 128.0 * 1024 * 1024;

  std::printf("=== Figure 2b: ERNG termination vs N ===\n");
  std::printf("basic = Algorithm 3; optimized = Algorithm 6 (2N/3 fallback "
              "cluster, as the paper used at these sizes)\n\n");

  // Sweep points flattened as (exponent, variant) pairs: even index =
  // ERNG-basic, odd index = ERNG-opt at the same N.
  std::size_t count = max_exp >= 2 ? 2 * static_cast<std::size_t>(max_exp - 1)
                                   : 0;
  auto runs = bench::run_sweep<bench::RunStats>(
      count, jobs, [&](std::size_t i) {
        int e = 2 + static_cast<int>(i / 2);
        std::uint32_t n = 1u << e;
        return i % 2 == 0
                   ? bench::run_erng_basic(n, protocol::ChannelMode::kAccounted,
                                           11 + e)
                   : bench::run_erng_opt(n, /*force_fallback=*/true,
                                         protocol::ChannelMode::kAccounted,
                                         11 + e, /*one_phase=*/true);
      });

  stats::Table table({"N", "variant", "rounds", "term (s)",
                      "term w/ 128MB/s link (s)", "MB"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::uint32_t n = 1u << (2 + i / 2);
    const auto& r = runs[i];
    // Bandwidth model: all traffic ultimately serializes through the
    // shared testbed link, so termination cannot beat bytes / bandwidth.
    double adjusted = std::max(
        r.termination_s, static_cast<double>(r.bytes) / kLinkBytesPerSec);
    table.add_row({std::to_string(n),
                   i % 2 == 0 ? "ERNG-basic" : "ERNG-opt",
                   std::to_string(r.rounds), stats::fmt(r.termination_s),
                   stats::fmt(adjusted),
                   stats::fmt(static_cast<double>(r.bytes) / (1024 * 1024),
                              3)});
  }
  table.print();
  std::printf(
      "\npaper reference: flat until ~2^7, then bandwidth-bound growth to "
      "~10^3 s; the pure-protocol column stays flat, the link-adjusted "
      "column reproduces the bend. Use --max-exp 8 for the next point "
      "(minutes of CPU, ~4 GB RAM).\n");
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
