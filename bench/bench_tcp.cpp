// bench_tcp — the real-socket data plane, old vs new.
//
// Compares the epoll event-loop TcpBus (edge-triggered reads, writev
// coalescing, refcounted multicast, backpressure) against the preserved
// poll(2)+mutex LegacyTcpBus behind the same TcpBusIface, over genuine
// localhost TCP:
//
//   * multicast blast throughput — node 0 fans a payload out to n−1 peers M
//     times; reports msgs/s and send-side syscalls/msg (writev coalescing
//     makes the latter < 1 for small frames);
//   * ping-pong round latency — n=2 echo loop, p50/p99 microseconds;
//   * ERB decide latency — the full protocol stack on TcpTestbed with each
//     bus kind, wall-clock milliseconds to every honest decision.
//
// Timing numbers land in gauges (never CI-gated); the planned work — point
// count, multicasts per point, total frames, ping-pong iterations, ERB n —
// lands in `tcp.plan.*` counters that are pure functions of the flags, so
// `check_bench_json --compare --compare-keys tcp.plan.` gates them exactly.
//
// Flags: --quick (CI sizing), --metrics-out [path] (default BENCH_tcp.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/tcp_bus.hpp"
#include "net/tcp_bus_legacy.hpp"
#include "net/tcp_testbed.hpp"
#include "obs/metrics.hpp"
#include "protocol/erb_node.hpp"

namespace {

using namespace sgxp2p;
using clock_t_ = std::chrono::steady_clock;

const char* kind_name(net::TcpBusKind k) {
  return k == net::TcpBusKind::kEpoll ? "epoll" : "legacy";
}

std::unique_ptr<net::TcpBusIface> make_bus(net::TcpBusKind kind,
                                           std::uint32_t n) {
  if (kind == net::TcpBusKind::kEpoll) {
    return std::make_unique<net::TcpBus>(n);
  }
  return std::make_unique<net::LegacyTcpBus>(n);
}

double seconds_since(clock_t_::time_point t0) {
  return std::chrono::duration<double>(clock_t_::now() - t0).count();
}

/// Spins (yielding) until `done` or the deadline passes. Returns false on
/// timeout — the bench aborts rather than hangs in CI.
template <typename Pred>
bool wait_until(const Pred& done, double timeout_s) {
  const auto deadline = clock_t_::now() + std::chrono::duration_cast<
      clock_t_::duration>(std::chrono::duration<double>(timeout_s));
  while (!done()) {
    if (clock_t_::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

struct ThroughputResult {
  double msgs_per_s = 0;
  double syscalls_per_msg = 0;  // send-side: writev/sendmsg calls per frame
};

/// One blast point: `multicasts` fan-outs of a `payload_size` blob from
/// node 0 to everyone else; msgs/s counts delivered frames. The sender
/// paces on the receive counter so queues stay far below the watermark —
/// the bench measures the drain rate, not the queue depth.
ThroughputResult run_throughput(net::TcpBusKind kind, std::uint32_t n,
                                std::size_t payload_size,
                                std::uint64_t multicasts) {
  auto bus = make_bus(kind, n);
  std::atomic<std::uint64_t> received{0};
  bus->set_receiver([&](NodeId, NodeId, Bytes) {
    received.fetch_add(1, std::memory_order_relaxed);
  });
  if (!bus->start()) {
    std::fprintf(stderr, "bench_tcp: mesh bring-up failed (n=%u)\n", n);
    std::exit(1);
  }

  Bytes payload(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  std::vector<NodeId> group;
  for (NodeId id = 1; id < n; ++id) group.push_back(id);

  const std::uint64_t expected = multicasts * (n - 1);
  constexpr std::uint64_t kWindowFrames = 4096;  // in-flight cap, ≪ watermark

  const auto t0 = clock_t_::now();
  for (std::uint64_t m = 0; m < multicasts; ++m) {
    if (!wait_until(
            [&] {
              return m * (n - 1) - received.load(std::memory_order_relaxed) <=
                     kWindowFrames;
            },
            30.0)) {
      std::fprintf(stderr, "bench_tcp: receiver stalled (n=%u)\n", n);
      std::exit(1);
    }
    while (bus->multicast(0, group, Bytes(payload)) ==
           net::SendStatus::kBackpressure) {
      std::this_thread::yield();
    }
  }
  if (!wait_until(
          [&] { return received.load(std::memory_order_relaxed) >= expected; },
          30.0)) {
    std::fprintf(stderr, "bench_tcp: delivery incomplete (n=%u): %llu/%llu\n",
                 n,
                 static_cast<unsigned long long>(received.load()),
                 static_cast<unsigned long long>(expected));
    std::exit(1);
  }
  const double elapsed = seconds_since(t0);
  bus->stop();

  ThroughputResult r;
  r.msgs_per_s = static_cast<double>(expected) / elapsed;
  obs::MetricsSnapshot snap = obs::MetricsRegistry::current().snapshot();
  const obs::CounterSample* writev = snap.find_counter("net.tcp.writev_calls");
  // The legacy bus issues one blocking write(2) per frame (no batching, no
  // instrumentation) — its send-side cost is 1.0 syscalls/msg by
  // construction.
  r.syscalls_per_msg =
      writev != nullptr
          ? static_cast<double>(writev->value) / static_cast<double>(expected)
          : 1.0;
  return r;
}

struct LatencyResult {
  double p50_us = 0;
  double p99_us = 0;
};

/// n=2 echo loop: node 1's receiver bounces every frame straight back (on
/// the bus I/O thread), node 0 times the round trip.
LatencyResult run_pingpong(net::TcpBusKind kind, std::uint64_t iters) {
  auto bus = make_bus(kind, 2);
  net::TcpBusIface* raw = bus.get();
  std::atomic<std::uint64_t> pongs{0};
  bus->set_receiver([&, raw](NodeId to, NodeId, Bytes blob) {
    if (to == 1) {
      (void)raw->send(1, 0, std::move(blob));
    } else {
      pongs.fetch_add(1, std::memory_order_release);
    }
  });
  if (!bus->start()) {
    std::fprintf(stderr, "bench_tcp: ping-pong bring-up failed\n");
    std::exit(1);
  }

  Bytes ping = to_bytes("ping-pong frame: 32 bytes of load");
  std::vector<double> rtts_us;
  rtts_us.reserve(iters);
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto t0 = clock_t_::now();
    (void)bus->send(0, 1, Bytes(ping));
    if (!wait_until(
            [&] { return pongs.load(std::memory_order_acquire) > i; }, 10.0)) {
      std::fprintf(stderr, "bench_tcp: ping-pong stalled at %llu\n",
                   static_cast<unsigned long long>(i));
      std::exit(1);
    }
    rtts_us.push_back(seconds_since(t0) * 1e6);
  }
  bus->stop();

  std::sort(rtts_us.begin(), rtts_us.end());
  LatencyResult r;
  r.p50_us = rtts_us[rtts_us.size() / 2];
  r.p99_us = rtts_us[std::min(rtts_us.size() - 1,
                              (rtts_us.size() * 99) / 100)];
  return r;
}

struct ErbResult {
  double decide_ms = 0;   // wall clock from start() to all-honest-decided
  std::uint32_t rounds = 0;
};

/// Full ERB stack on TcpTestbed — sealed channels, wall-clock rounds — with
/// the chosen data plane underneath. Both kinds run the identical protocol
/// configuration, so the delta is the transport.
ErbResult run_erb_tcp(net::TcpBusKind kind, std::uint32_t n,
                      SimDuration round_ms) {
  net::TcpTestbedConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 2;
  cfg.round_ms = round_ms;
  cfg.bus_kind = kind;
  net::TcpTestbed bed(cfg);

  const Bytes payload = to_bytes("bench_tcp erb payload");
  const NodeId initiator = 0;
  bool ok = bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
          protocol::PeerConfig pc,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, pc, ias, initiator,
            id == initiator ? payload : Bytes{});
      });
  if (!ok) {
    std::fprintf(stderr, "bench_tcp: erb mesh bring-up failed (n=%u)\n", n);
    std::exit(1);
  }
  const auto t0 = clock_t_::now();
  bed.start();
  ErbResult r;
  r.rounds = bed.run_rounds(bed.config().t + 6, [&] {
    for (NodeId id = 0; id < n; ++id) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });
  r.decide_ms = seconds_since(t0) * 1e3;
  const bool all = bed.locked([&] {
    for (NodeId id = 0; id < n; ++id) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });
  if (!all) {
    std::fprintf(stderr, "bench_tcp: erb did not decide within %u rounds\n",
                 r.rounds);
    std::exit(1);
  }
  return r;
}

/// Runs `fn` against a fresh registry (so each point's net.tcp.* counters
/// start at zero), folds the snapshot into the parent, returns the result.
template <typename Fn>
auto isolated(obs::MetricsRegistry& parent, const Fn& fn) {
  obs::MetricsRegistry reg;
  using R = decltype(fn());
  R result;
  {
    obs::MetricsRegistry::ScopedCurrent bind(reg);
    result = fn();
  }
  obs::merge_snapshot(parent, reg.snapshot());
  return result;
}

std::int64_t i64(double v) { return static_cast<std::int64_t>(v); }

}  // namespace

int main(int argc, char** argv) {
  bench::ObsOptions obs_opts = bench::parse_obs(argc, argv, "tcp");
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::uint64_t multicasts = quick ? 2000 : 10000;
  const std::uint64_t pingpong_iters = quick ? 500 : 2000;
  const std::uint32_t erb_n = quick ? 8 : 16;
  const SimDuration erb_round_ms = 150;
  const std::vector<std::uint32_t> ns = {8, 32};
  const std::vector<std::size_t> payloads = {64, 1024};
  const std::vector<net::TcpBusKind> kinds = {net::TcpBusKind::kLegacyPoll,
                                              net::TcpBusKind::kEpoll};

  auto& reg = obs::MetricsRegistry::current();
  std::printf("=== bench_tcp: epoll data plane vs poll(2)+mutex baseline "
              "===\n");
  std::printf("multicasts/point %llu, ping-pong iters %llu, erb n=%u "
              "(%s mode)\n\n",
              static_cast<unsigned long long>(multicasts),
              static_cast<unsigned long long>(pingpong_iters), erb_n,
              quick ? "quick" : "full");

  // --- multicast blast throughput ---
  std::printf("[multicast throughput, node 0 -> n-1 peers]\n");
  std::printf("  %-8s %4s %7s %14s %14s\n", "bus", "n", "payload", "msgs/s",
              "syscalls/msg");
  double epoll_n32_small = 0, legacy_n32_small = 0, epoll_n32_syscalls = 1.0;
  std::uint64_t planned_frames = 0;
  for (net::TcpBusKind kind : kinds) {
    for (std::uint32_t n : ns) {
      for (std::size_t payload : payloads) {
        ThroughputResult r = isolated(reg, [&] {
          return run_throughput(kind, n, payload, multicasts);
        });
        planned_frames += multicasts * (n - 1);
        std::printf("  %-8s %4u %6zuB %14.0f %14.3f\n", kind_name(kind), n,
                    payload, r.msgs_per_s, r.syscalls_per_msg);
        const std::string key = std::string("bench.tcp.") + kind_name(kind) +
                                ".n" + std::to_string(n) + ".p" +
                                std::to_string(payload);
        reg.gauge(key + ".msgs_per_s").set(i64(r.msgs_per_s));
        reg.gauge(key + ".syscalls_per_msg_x1000")
            .set(i64(r.syscalls_per_msg * 1000.0));
        if (n == 32 && payload == 64) {
          if (kind == net::TcpBusKind::kEpoll) {
            epoll_n32_small = r.msgs_per_s;
            epoll_n32_syscalls = r.syscalls_per_msg;
          } else {
            legacy_n32_small = r.msgs_per_s;
          }
        }
      }
    }
  }

  // --- ping-pong round latency ---
  std::printf("\n[ping-pong round latency, n=2]\n");
  for (net::TcpBusKind kind : kinds) {
    LatencyResult r =
        isolated(reg, [&] { return run_pingpong(kind, pingpong_iters); });
    std::printf("  %-8s p50 %8.1f us   p99 %8.1f us\n", kind_name(kind),
                r.p50_us, r.p99_us);
    const std::string key = std::string("bench.tcp.") + kind_name(kind);
    reg.gauge(key + ".pingpong_p50_us").set(i64(r.p50_us));
    reg.gauge(key + ".pingpong_p99_us").set(i64(r.p99_us));
  }

  // --- ERB decide latency over the full stack ---
  std::printf("\n[erb decide latency, n=%u, round=%lldms]\n", erb_n,
              static_cast<long long>(erb_round_ms));
  for (net::TcpBusKind kind : kinds) {
    ErbResult r =
        isolated(reg, [&] { return run_erb_tcp(kind, erb_n, erb_round_ms); });
    std::printf("  %-8s decided in %7.0f ms (%u rounds)\n", kind_name(kind),
                r.decide_ms, r.rounds);
    const std::string key = std::string("bench.tcp.") + kind_name(kind);
    reg.gauge(key + ".erb_decide_ms").set(i64(r.decide_ms));
    reg.gauge(key + ".erb_rounds").set(r.rounds);
  }

  // --- summary + acceptance gates (reported, CI gates only tcp.plan.*) ---
  const double speedup =
      legacy_n32_small > 0 ? epoll_n32_small / legacy_n32_small : 0;
  std::printf("\n[summary]\n");
  std::printf("  n=32/64B: legacy %.0f msgs/s, epoll %.0f msgs/s "
              "-> %.2fx (target >= 3x)\n",
              legacy_n32_small, epoll_n32_small, speedup);
  std::printf("  epoll send-side syscalls/msg at n=32/64B: %.3f "
              "(target < 0.5)\n",
              epoll_n32_syscalls);
  const bool met = speedup >= 3.0 && epoll_n32_syscalls < 0.5;
  std::printf("  target %s\n", met ? "MET" : "NOT met");
  reg.gauge("bench.tcp.speedup_x100").set(i64(speedup * 100.0));

  // Deterministic plan counters — exact-compare material for CI.
  reg.counter("tcp.plan.points")
      .inc(kinds.size() * ns.size() * payloads.size());
  reg.counter("tcp.plan.multicasts_per_point").inc(multicasts);
  reg.counter("tcp.plan.frames").inc(planned_frames);
  reg.counter("tcp.plan.pingpong_iters").inc(pingpong_iters * kinds.size());
  reg.counter("tcp.plan.erb_nodes").inc(erb_n * kinds.size());

  bench::finish_obs(obs_opts);
  return 0;
}
