// Microbenchmarks (google-benchmark): the primitive costs behind the
// implementation-level remarks in Section 6 — channel seal/open on ~100 B
// protocol messages, the crypto kernels, attestation verification, and the
// signature costs that RBsig pays but ERB avoids (Appendix B).
#include <benchmark/benchmark.h>

#include "channel/handshake.hpp"
#include "channel/secure_link.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wots.hpp"
#include "crypto/x25519.hpp"

namespace {

using namespace sgxp2p;
using namespace sgxp2p::crypto;

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSha256_100B(benchmark::State& state) {
  Bytes key(32, 0x11), data(100, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256::mac(key, data));
  }
}
BENCHMARK(BM_HmacSha256_100B);

void BM_ChaCha20_1KiB(benchmark::State& state) {
  Bytes key(32, 0x01), nonce(12, 0x02), data(1024, 0x03);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chacha20_crypt(key, nonce, 1, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ChaCha20_1KiB);

void BM_AeadSeal_100B(benchmark::State& state) {
  Bytes key(kAeadKeySize, 0x42), nonce(kAeadNonceSize, 0), msg(100, 0x55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_seal(key, nonce, {}, msg));
  }
}
BENCHMARK(BM_AeadSeal_100B);

void BM_AeadOpen_100B(benchmark::State& state) {
  Bytes key(kAeadKeySize, 0x42), nonce(kAeadNonceSize, 0), msg(100, 0x55);
  Bytes sealed = aead_seal(key, nonce, {}, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_open(key, {}, sealed));
  }
}
BENCHMARK(BM_AeadOpen_100B);

void BM_X25519_SharedSecret(benchmark::State& state) {
  Drbg d(to_bytes("bench"));
  Bytes a = d.generate(32);
  Bytes b_pub = x25519_public(d.generate(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(x25519_shared(a, b_pub));
  }
}
BENCHMARK(BM_X25519_SharedSecret);

void BM_Drbg_32B(benchmark::State& state) {
  Drbg d(to_bytes("drbg-bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.generate(32));
  }
}
BENCHMARK(BM_Drbg_32B);

void BM_WotsSign(benchmark::State& state) {
  Bytes seed = Sha256::hash_bytes(to_bytes("wots-bench"));
  WotsKeyPair kp = wots_keygen(seed, 0);
  Bytes msg(100, 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wots_sign(kp, 0, msg));
  }
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
  Bytes seed = Sha256::hash_bytes(to_bytes("wots-bench"));
  WotsKeyPair kp = wots_keygen(seed, 0);
  Bytes msg(100, 0x77);
  Bytes sig = wots_sign(kp, 0, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wots_verify(kp.public_key, 0, msg, sig));
  }
}
BENCHMARK(BM_WotsVerify);

// The per-message channel cost ERB pays (symmetric) vs the signature
// verification RBsig pays — the Appendix B "significant computation cost"
// comparison.
void BM_SecureLink_RoundTrip(benchmark::State& state) {
  channel::LinkKeys keys;
  Drbg d(to_bytes("link-bench"));
  keys.send_key = d.generate(kAeadKeySize);
  keys.recv_key = keys.send_key;
  keys.send_seq0 = 0;
  keys.recv_seq0 = 0;
  sgx::Measurement m = sgx::measure({"bench", "1.0"});
  // A sends with its send_key; B receives with recv_key == A's send_key and
  // the AAD of the A→B direction.
  channel::SecureLink a(0, 1, keys, m);
  Bytes msg(100, 0x12);
  for (auto _ : state) {
    Bytes sealed = a.seal(msg);
    benchmark::DoNotOptimize(sealed);
  }
}
BENCHMARK(BM_SecureLink_RoundTrip);

void BM_MerkleSign(benchmark::State& state) {
  MerkleSigner signer(Sha256::hash_bytes(to_bytes("ms-bench")), 10);
  Bytes msg(100, 0x34);
  for (auto _ : state) {
    if (signer.remaining() == 0) {
      state.SkipWithError("one-time keys exhausted");
      break;
    }
    benchmark::DoNotOptimize(signer.sign(msg));
  }
}
BENCHMARK(BM_MerkleSign)->Iterations(512);

}  // namespace

BENCHMARK_MAIN();
