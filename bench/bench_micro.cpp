// bench_micro — crypto primitive throughput (the costs behind Section 6's
// implementation remarks, plus the speedups this repo's hot-path work buys).
//
// Self-contained chrono harness (no external benchmark framework) so it can
// emit the same metrics-JSON contract as the figure benches. Two baselines
// are compiled in for an honest comparison:
//   * `legacy::ChaCha20` — the pre-optimization byte-at-a-time keystream;
//   * `legacy::aead_seal/open` — the pre-optimization seal path (three
//     buffer allocations, per-message HMAC key schedule).
// Against those we measure the current batched cipher (scalar and, when the
// binary carries one, the SIMD kernel — toggled via chacha20_force_scalar())
// and the AeadKey single-allocation seal/open.
//
// Flags:
//   --quick           shorter measurement windows (CI smoke mode)
//   --repeats <n>     repetitions per benchmark (default 3); the reported
//                     number and the metrics JSON carry the MEDIAN, with
//                     min/max alongside, so `check_bench_json --compare`
//                     can run a tolerance well below the old 2x
//   --metrics-out [p] write {"bench":"perf","metrics":…} JSON (default
//                     BENCH_perf.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "channel/secure_link.hpp"
#include "sgx/measurement.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace sgxp2p;
using namespace sgxp2p::crypto;

// Prevents the optimizer from deleting a benchmarked computation.
inline void keep(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

// ----- legacy (pre-optimization) implementations, kept verbatim in shape --

namespace legacy {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

/// The seed's ChaCha20: one block per refill, per-byte XOR loop.
class ChaCha20 {
 public:
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter) {
    state_[0] = 0x61707865;
    state_[1] = 0x3320646e;
    state_[2] = 0x79622d32;
    state_[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
    state_[12] = counter;
    for (int i = 0; i < 3; ++i) {
      state_[13 + i] = load_le32(nonce.data() + 4 * i);
    }
  }

  void crypt(std::uint8_t* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      if (block_pos_ == 64) next_block();
      data[i] ^= block_[block_pos_++];
    }
  }

 private:
  void next_block() {
    std::array<std::uint32_t, 16> x = state_;
    for (int round = 0; round < 10; ++round) {
      quarter_round(x[0], x[4], x[8], x[12]);
      quarter_round(x[1], x[5], x[9], x[13]);
      quarter_round(x[2], x[6], x[10], x[14]);
      quarter_round(x[3], x[7], x[11], x[15]);
      quarter_round(x[0], x[5], x[10], x[15]);
      quarter_round(x[1], x[6], x[11], x[12]);
      quarter_round(x[2], x[7], x[8], x[13]);
      quarter_round(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i) {
      store_le32(block_.data() + 4 * i, x[i] + state_[i]);
    }
    state_[12] += 1;
    block_pos_ = 0;
  }

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;
};

inline Bytes chacha20_crypt(ByteView key, ByteView nonce,
                            std::uint32_t counter, ByteView data) {
  Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, counter);
  cipher.crypt(out.data(), out.size());
  return out;
}

inline void mac_header(HmacSha256& mac, ByteView nonce, ByteView ad,
                       ByteView ct) {
  std::uint8_t lens[16];
  store_le64(lens, ad.size());
  store_le64(lens + 8, ct.size());
  mac.update(nonce);
  mac.update(ad);
  mac.update(ct);
  mac.update(ByteView(lens, sizeof lens));
}

/// The seed's seal: separate ciphertext allocation, append into `out`, and
/// the HMAC key schedule rebuilt from raw bytes for every message.
inline Bytes aead_seal(ByteView key, ByteView nonce, ByteView ad,
                       ByteView plaintext) {
  ByteView enc_key = key.subspan(0, 32);
  ByteView mac_key = key.subspan(32, 32);
  Bytes out;
  out.reserve(kAeadOverhead + plaintext.size());
  append(out, nonce);
  Bytes ct = chacha20_crypt(enc_key, nonce, 1, plaintext);
  append(out, ct);
  HmacSha256 mac(mac_key);
  mac_header(mac, nonce, ad, ct);
  Sha256Digest tag = mac.finalize();
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

inline std::optional<Bytes> aead_open(ByteView key, ByteView ad,
                                      ByteView sealed) {
  if (sealed.size() < kAeadOverhead) return std::nullopt;
  ByteView enc_key = key.subspan(0, 32);
  ByteView mac_key = key.subspan(32, 32);
  ByteView nonce = sealed.subspan(0, kAeadNonceSize);
  ByteView ct = sealed.subspan(kAeadNonceSize, sealed.size() - kAeadOverhead);
  ByteView tag = sealed.subspan(sealed.size() - kAeadTagSize);
  HmacSha256 mac(mac_key);
  mac_header(mac, nonce, ad, ct);
  Sha256Digest expected = mac.finalize();
  if (!ct_equal(ByteView(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  return chacha20_crypt(enc_key, nonce, 1, ct);
}

}  // namespace legacy

// ----- measurement harness -----

double g_seconds_per_bench = 0.25;  // --quick drops this to 0.05
int g_repeats = 3;  // odd, so the median is a real sample, not an average

struct Result {
  std::string name;
  double mbps = 0;      // median across repeats — the comparison-stable number
  double mbps_min = 0;
  double mbps_max = 0;
  double ns_per_op = 0;     // from the median repetition
  std::uint64_t iters = 0;  // iterations of the median repetition
};

/// Runs `fn` for ~g_seconds_per_bench, g_repeats times, and reports the
/// median throughput (min/max alongside). Scheduler noise hits min and max;
/// the median is what `check_bench_json --compare` gates on.
template <typename Fn>
Result measure(const std::string& name, std::size_t bytes_per_op, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup (touches caches, faults pages)
  struct Rep {
    double mbps = 0;
    double ns_per_op = 0;
    std::uint64_t iters = 0;
  };
  std::vector<Rep> reps;
  for (int rep = 0; rep < g_repeats; ++rep) {
    std::uint64_t iters = 0;
    auto start = clock::now();
    auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(g_seconds_per_bench));
    clock::time_point now;
    do {
      for (int i = 0; i < 32; ++i) fn();  // amortize the clock reads
      iters += 32;
      now = clock::now();
    } while (now < deadline);
    double elapsed = std::chrono::duration<double>(now - start).count();
    Rep r;
    r.iters = iters;
    r.ns_per_op = elapsed * 1e9 / static_cast<double>(iters);
    r.mbps = static_cast<double>(iters) * static_cast<double>(bytes_per_op) /
             elapsed / (1024.0 * 1024.0);
    reps.push_back(r);
  }
  std::sort(reps.begin(), reps.end(),
            [](const Rep& a, const Rep& b) { return a.mbps < b.mbps; });
  const Rep& med = reps[reps.size() / 2];
  Result r;
  r.name = name;
  r.mbps = med.mbps;
  r.mbps_min = reps.front().mbps;
  r.mbps_max = reps.back().mbps;
  r.ns_per_op = med.ns_per_op;
  r.iters = med.iters;
  std::printf("  %-34s %10.1f MB/s  [%.1f..%.1f]  %12.0f ns/op\n",
              name.c_str(), r.mbps, r.mbps_min, r.mbps_max, r.ns_per_op);
  // Mirror into the metrics registry so the JSON snapshot carries the table.
  auto& reg = obs::MetricsRegistry::current();
  reg.gauge("bench." + name + ".mbps").set(static_cast<std::int64_t>(r.mbps));
  reg.gauge("bench." + name + ".mbps_min")
      .set(static_cast<std::int64_t>(r.mbps_min));
  reg.gauge("bench." + name + ".mbps_max")
      .set(static_cast<std::int64_t>(r.mbps_max));
  return r;
}

int flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return i;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (flag_present(argc, argv, "--quick") != 0) g_seconds_per_bench = 0.05;
  if (int i = flag_present(argc, argv, "--repeats"); i != 0 && i + 1 < argc) {
    int reps = std::atoi(argv[i + 1]);
    if (reps > 0) g_repeats = reps;
  }
  std::string metrics_path;
  if (int i = flag_present(argc, argv, "--metrics-out"); i != 0) {
    metrics_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1]
                                                           : "BENCH_perf.json";
  }

  auto& reg = obs::MetricsRegistry::current();
  std::printf("=== bench_micro: crypto primitive throughput ===\n");
  std::printf("chacha20 backend: %s, sha256 backend: %s   "
              "(window %.2fs/bench)\n\n",
              chacha20_backend(), sha256_backend(), g_seconds_per_bench);

  Bytes key32(kChaChaKeySize, 0x01), nonce(kChaChaNonceSize, 0x02);
  Bytes key64(kAeadKeySize, 0x42);
  AeadKey aead_key{ByteView(key64)};

  // --- keystream throughput: legacy vs batched-scalar vs batched-SIMD ---
  std::printf("[chacha20 keystream, 4 KiB blocks]\n");
  Bytes buf(4096, 0x03);
  auto ks_legacy = measure("chacha20_legacy_4096", buf.size(), [&] {
    legacy::ChaCha20 c(key32, nonce, 1);
    c.crypt(buf.data(), buf.size());
    keep(buf.data());
  });
  chacha20_force_scalar() = true;
  auto ks_scalar = measure("chacha20_scalar_4096", buf.size(), [&] {
    ChaCha20 c(key32, nonce, 1);
    c.crypt(buf.data(), buf.size());
    keep(buf.data());
  });
  chacha20_force_scalar() = false;
  auto ks_simd = measure(std::string("chacha20_") + chacha20_backend() +
                             "_4096",
                         buf.size(), [&] {
                           ChaCha20 c(key32, nonce, 1);
                           c.crypt(buf.data(), buf.size());
                           keep(buf.data());
                         });

  // --- AEAD seal/open on protocol-sized (100 B) and bulk (1 KiB) messages --
  std::uint64_t sealed_bytes = 0, opened_bytes = 0;
  std::vector<std::size_t> sizes{100, 1024};
  double seal_speedup_min = 1e9, open_speedup_min = 1e9;
  for (std::size_t sz : sizes) {
    std::printf("[aead seal/open, %zu B messages]\n", sz);
    Bytes msg(sz, 0x55);
    Bytes sealed = aead_seal(aead_key, nonce, {}, msg);

    // The pre-PR binary had neither the SHA-NI compressor nor the batched
    // cipher, so the legacy measurements force the scalar hash too.
    sha256_force_scalar() = true;
    auto seal_legacy =
        measure("aead_seal_legacy_" + std::to_string(sz), sz, [&] {
          Bytes out = legacy::aead_seal(key64, nonce, {}, msg);
          keep(out.data());
        });
    auto open_legacy =
        measure("aead_open_legacy_" + std::to_string(sz), sz, [&] {
          auto out = legacy::aead_open(key64, {}, sealed);
          keep(&out);
        });
    sha256_force_scalar() = false;
    auto seal_now = measure("aead_seal_" + std::to_string(sz), sz, [&] {
      Bytes out = aead_seal(aead_key, nonce, {}, msg);
      keep(out.data());
    });
    auto open_now = measure("aead_open_" + std::to_string(sz), sz, [&] {
      auto out = aead_open(aead_key, {}, sealed);
      keep(&out);
    });
    // Counters reflect the MEDIAN repetition only — summing all repeats
    // would scale crypto.seal_bytes with --repeats and break baseline
    // comparisons.
    sealed_bytes += seal_now.iters * sz;
    opened_bytes += open_now.iters * sz;
    double s_up = seal_now.mbps / seal_legacy.mbps;
    double o_up = open_now.mbps / open_legacy.mbps;
    seal_speedup_min = std::min(seal_speedup_min, s_up);
    open_speedup_min = std::min(open_speedup_min, o_up);
    std::printf("  -> seal speedup %.2fx, open speedup %.2fx vs pre-PR\n\n",
                s_up, o_up);
    reg.gauge("bench.seal_speedup_x100_" + std::to_string(sz))
        .set(static_cast<std::int64_t>(s_up * 100.0));
    reg.gauge("bench.open_speedup_x100_" + std::to_string(sz))
        .set(static_cast<std::int64_t>(o_up * 100.0));
  }
  reg.counter("crypto.seal_bytes").inc(sealed_bytes);
  reg.counter("crypto.open_bytes").inc(opened_bytes);

  // --- the per-message channel cost ERB pays (cached-key SecureLink) ---
  std::printf("[secure link, 100 B protocol messages]\n");
  {
    channel::LinkKeys keys;
    Drbg d(to_bytes("link-bench"));
    keys.send_key = d.generate(kAeadKeySize);
    keys.recv_key = keys.send_key;
    sgx::Measurement m = sgx::measure({"bench", "1.0"});
    // The timed loop's own channel.* increments would scale with --repeats,
    // so the link runs against a scratch registry and the real one is
    // credited with the median repetition's seal count afterwards.
    Result r;
    {
      obs::MetricsRegistry scratch;
      obs::MetricsRegistry::ScopedCurrent scoped(scratch);
      channel::SecureLink a(0, 1, keys, m);
      Bytes msg(100, 0x12);
      r = measure("securelink_seal_100", msg.size(), [&] {
        Bytes sealed = a.seal(msg);
        keep(sealed.data());
      });
    }
    reg.gauge("bench.securelink_seal_100.mbps")
        .set(static_cast<std::int64_t>(r.mbps));
    reg.gauge("bench.securelink_seal_100.mbps_min")
        .set(static_cast<std::int64_t>(r.mbps_min));
    reg.gauge("bench.securelink_seal_100.mbps_max")
        .set(static_cast<std::int64_t>(r.mbps_max));
    reg.counter("channel.sealed").inc(r.iters);
    // Register the remaining channel instruments (zero in this bench) so
    // the snapshot keeps the full channel.* shape the baseline expects.
    reg.counter("channel.opened");
    reg.counter("channel.replay_rejected");
    reg.counter("channel.mac_failed");
    reg.counter("channel.window_overflow");
  }

  std::printf("\n[summary]\n");
  std::printf("  keystream: legacy %.0f MB/s, scalar-batched %.0f MB/s, "
              "%s %.0f MB/s (%.2fx over legacy)\n",
              ks_legacy.mbps, ks_scalar.mbps, chacha20_backend(), ks_simd.mbps,
              ks_simd.mbps / ks_legacy.mbps);
  std::printf("  min seal speedup %.2fx, min open speedup %.2fx "
              "(target >= 2x vs pre-PR)\n",
              seal_speedup_min, open_speedup_min);
  bool ok = seal_speedup_min >= 2.0 && open_speedup_min >= 2.0;
  std::printf("  target %s\n", ok ? "MET" : "NOT met");

  if (!metrics_path.empty()) {
    std::string json =
        "{\"bench\":\"perf\",\"metrics\":" + reg.to_json() + "}\n";
    std::FILE* f = std::fopen(metrics_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nmetrics snapshot written to %s\n", metrics_path.c_str());
  }
  return 0;
}
