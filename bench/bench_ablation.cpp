// Ablations for the design decisions DESIGN.md §4 calls out:
//   1. Halt-on-divergence (P4) on/off under the chain adversary — active
//      elimination is what shrinks byzantine-case traffic (Fig. 3c) and
//      what sanitizes the network.
//   2. Blinded channel vs signature chains — per-message wire and CPU cost
//      (the Appendix B efficiency argument).
//   3. ERNG-opt one-phase vs two-phase cluster sampling — O(γ³) vs
//      O(γ^{5/2}) intra-cluster traffic.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "crypto/aead.hpp"
#include "crypto/merkle.hpp"
#include "protocol/erng_opt.hpp"
#include "stats/table.hpp"

namespace {
using namespace sgxp2p;

bench::RunStats run_erb_halt_ablation(std::uint32_t n, std::uint32_t f,
                                      bool enable_halt, std::uint64_t seed) {
  sim::Testbed bed(bench::bench_config(n, seed, protocol::ChannelMode::kAccounted));
  auto plan = std::make_shared<adversary::ChainPlan>();
  for (NodeId id = 0; id < f; ++id) plan->order.push_back(id);
  plan->release = adversary::ChainPlan::Release::kSingleHonest;
  plan->honest_target = f;

  bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
          protocol::PeerConfig cfg,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, cfg, ias, NodeId{0},
            id == 0 ? to_bytes("payload") : Bytes{}, enable_halt);
      },
      [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
        if (id < f) return std::make_unique<adversary::ChainStrategy>(plan);
        return nullptr;
      });
  bed.start();
  bench::RunStats out;
  out.rounds = bed.run_rounds(bed.config().effective_t() + 4, [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });
  out.messages = bed.network().meter().messages();
  out.bytes = bed.network().meter().bytes();
  return out;
}

bench::RunStats run_opt_phase_ablation(std::uint32_t n, bool one_phase,
                                       std::uint64_t seed) {
  auto cfg = bench::bench_config(n, seed, protocol::ChannelMode::kAccounted);
  cfg.t = n / 3;
  protocol::ErngOptParams params;
  params.one_phase = one_phase;
  sim::Testbed bed(cfg);
  bed.build([&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                protocol::PeerConfig pc, const sgx::SimIAS& ias)
                -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErngOptNode>(platform, id, host, pc, ias,
                                                   params);
  });
  return bench::finish_erng<protocol::ErngOptNode>(bed, n + 8);
}

}  // namespace

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "ablation");
  std::printf("=== Ablation 1: halt-on-divergence (P4) on/off ===\n");
  std::printf("N=129, chain adversary with f=16\n\n");
  {
    stats::Table table({"P4", "rounds", "messages", "bytes"});
    for (bool halt : {true, false}) {
      auto r = run_erb_halt_ablation(129, 16, halt, 5);
      table.add_row({halt ? "on" : "off", std::to_string(r.rounds),
                     stats::fmt_int(r.messages), stats::fmt_int(r.bytes)});
    }
    table.print();
    std::printf("with P4 off, chain members are never churned: they keep "
                "receiving multicasts (and the network keeps paying for "
                "them), and a repeated-instance deployment never "
                "sanitizes.\n\n");
  }

  std::printf("=== Ablation 2: blinded channel vs signature chain ===\n\n");
  {
    using namespace sgxp2p::crypto;
    using clock = std::chrono::steady_clock;
    // ERB pays one AEAD seal per message (~100 B); RBsig pays a WOTS sign on
    // relay and a chain verify per receipt, with ~2.2 KiB per signature.
    Bytes key(kAeadKeySize, 0x42), nonce(kAeadNonceSize, 0), msg(100, 0x55);
    auto t0 = clock::now();
    constexpr int kIters = 2000;
    std::size_t sink = 0;
    for (int i = 0; i < kIters; ++i) {
      store_le32(nonce.data(), static_cast<std::uint32_t>(i));
      sink += aead_seal(key, nonce, {}, msg).size();
    }
    if (sink == 0) std::printf("unreachable\n");
    double aead_us = std::chrono::duration<double, std::micro>(clock::now() - t0)
                         .count() / kIters;

    Bytes seed = Sha256::hash_bytes(to_bytes("ablation"));
    WotsKeyPair kp = wots_keygen(seed, 0);
    t0 = clock::now();
    Bytes sig;
    for (int i = 0; i < 50; ++i) sig = wots_sign(kp, 0, msg);
    double sign_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count() /
        50;
    t0 = clock::now();
    for (int i = 0; i < 50; ++i) (void)wots_verify(kp.public_key, 0, msg, sig);
    double verify_us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count() /
        50;

    stats::Table table({"operation", "cost (us)", "wire bytes"});
    table.add_row({"ERB: AEAD seal (100 B val)", stats::fmt(aead_us, 1),
                   std::to_string(100 + kAeadOverhead)});
    table.add_row({"RBsig: WOTS sign", stats::fmt(sign_us, 1),
                   std::to_string(kWotsSigSize)});
    table.add_row({"RBsig: WOTS verify", stats::fmt(verify_us, 1), "-"});
    table.print();
    std::printf("\n");
  }

  std::printf("=== Ablation 3: ERNG-opt one-phase vs two-phase sampling ===\n");
  std::printf("N=192, t=64, sampled cluster\n\n");
  {
    stats::Table table({"sampling", "rounds", "messages", "bytes"});
    for (bool one_phase : {false, true}) {
      auto r = run_opt_phase_ablation(192, one_phase, 7);
      table.add_row({one_phase ? "one-phase (all initiate)" : "two-phase (γ')",
                     std::to_string(r.rounds), stats::fmt_int(r.messages),
                     stats::fmt_int(r.bytes)});
    }
    table.print();
    std::printf("two-phase keeps only ~√γ initiators, trimming the "
                "intra-cluster ERB traffic from O(γ³) toward O(γ^{5/2}) "
                "(Appendix F).\n");
  }
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
