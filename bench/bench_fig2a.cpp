// Figure 2a — ERB termination time vs number of peers (honest initiator).
//
// Paper: "termination, in the case of an honest initiator, is nearly equal
// to twice the value of one round" — constant in N (the small rise at 2^8+
// on DeterLab was a testbed bandwidth artifact). We sweep N = 2^1 … 2^10
// (--max-exp raises it) with Δ = 1 s (round = 2 s) and report virtual time.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "fig2a");
  using namespace sgxp2p;
  int max_exp = bench::flag_int(argc, argv, "--max-exp", 10);
  int jobs = bench::sweep_jobs(argc, argv);

  std::printf("=== Figure 2a: ERB honest termination vs N ===\n");
  std::printf("round time = 2s (Delta = 1s); times are virtual seconds\n\n");

  auto runs = bench::run_sweep<bench::RunStats>(
      static_cast<std::size_t>(max_exp), jobs, [&](std::size_t i) {
        int e = static_cast<int>(i) + 1;
        return bench::run_erb(1u << e, 0, protocol::ChannelMode::kAccounted,
                              42 + e);
      });

  stats::Table table({"N", "rounds", "one round (s)", "ERB termination (s)",
                      "messages"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::uint32_t n = 1u << (i + 1);
    const auto& r = runs[i];
    table.add_row({std::to_string(n), std::to_string(r.rounds),
                   stats::fmt(2.0), stats::fmt(r.termination_s),
                   stats::fmt_int(r.messages)});
  }
  table.print();
  std::printf(
      "\npaper reference: honest ERB terminates in ~2 rounds (~4 s) at every "
      "network size.\n");
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
