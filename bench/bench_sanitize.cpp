// Appendix D — network sanitization across repeated instances.
//
// Reproduces the two analytical claims with Monte Carlo:
//   Theorem D.1: Pr[F_r ≥ 1] ≤ t(1 − p/2)^r — the byzantine population is
//   gone w.h.p. after r ≈ (2/p)·ln t instances (paper example: N = 2^10,
//   p = 2^-5, λ = 30 → r ≈ 2500).
//   Theorem D.2: the average round cost per instance converges to the
//   constant 2 as the network sanitizes.
#include <cstdio>

#include "bench_util.hpp"
#include "protocol/sanitizer.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "sanitize");
  using namespace sgxp2p;

  protocol::SanitizeConfig cfg;
  cfg.n = 1024;
  cfg.t0 = 511;
  cfg.p = 1.0 / 32;
  cfg.instances = 4000;
  cfg.trials = 100;

  std::printf("=== Appendix D: sanitization (N=%u, t0=%u, p=1/32) ===\n\n",
              cfg.n, cfg.t0);
  auto curves = protocol::simulate_sanitization(cfg);

  stats::Table table({"instances r", "MC Pr[F_r>=1]", "bound t(1-p/2)^r",
                      "E[F_r]", "avg rounds/instance"});
  for (std::uint32_t r : {50u, 100u, 250u, 500u, 1000u, 1500u, 2000u, 2500u,
                          3000u, 4000u}) {
    std::uint32_t i = r - 1;
    table.add_row({std::to_string(r), stats::fmt(curves.pr_byz_remaining[i], 3),
                   stats::fmt(curves.pr_bound[i], 3),
                   stats::fmt(curves.mean_byzantine[i], 2),
                   stats::fmt(curves.mean_rounds[i], 3)});
  }
  table.print();
  std::printf(
      "\npaper reference: with λ=30, t=511, p=2^-5 the bound gives r ≈ 2500 "
      "for full sanitization; the Monte-Carlo probability above should reach "
      "~0 by then, and the average per-instance round cost should approach "
      "the constant 2 (Theorem D.2).\n");
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
