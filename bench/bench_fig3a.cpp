// Figure 3a — ERB total network traffic (MB) vs number of peers, measured
// (Ex) against the theoretical quadratic (Th).
//
// Paper: quadratic growth; 277 MB at N = 1024 on their message sizes
// (INIT ≈ 100 B, ACK ≈ 80 B). Our wire sizes are close (sealed vals ≈
// 100–140 B), so absolute numbers land in the same regime; the Th column is
// the c·N² curve normalized at the middle of the sweep, as in the paper.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "fig3a");
  using namespace sgxp2p;
  int max_exp = bench::flag_int(argc, argv, "--max-exp", 10);
  int jobs = bench::sweep_jobs(argc, argv);

  std::printf("=== Figure 3a: ERB traffic vs N (Th vs Ex) ===\n\n");

  auto runs = bench::run_sweep<bench::RunStats>(
      static_cast<std::size_t>(max_exp), jobs, [&](std::size_t i) {
        int e = static_cast<int>(i) + 1;
        return bench::run_erb(1u << e, 0, protocol::ChannelMode::kAccounted,
                              7 + e);
      });
  std::vector<double> ns, mbs;
  std::vector<std::uint64_t> msgs;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ns.push_back(1u << (i + 1));
    mbs.push_back(static_cast<double>(runs[i].bytes) / (1024.0 * 1024.0));
    msgs.push_back(runs[i].messages);
  }
  // Normalize Th = c·N² at the middle sample.
  std::size_t mid = ns.size() / 2;
  double c = mbs[mid] / (ns[mid] * ns[mid]);

  stats::Table table({"N", "messages", "Ex (MB)", "Th c*N^2 (MB)"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    table.add_row({stats::fmt(ns[i], 0), stats::fmt_int(msgs[i]),
                   stats::fmt(mbs[i], 3), stats::fmt(c * ns[i] * ns[i], 3)});
  }
  table.print();

  double slope = stats::loglog_slope(ns, mbs);
  std::printf("\nmeasured scaling exponent (log-log slope): %.2f  (theory: 2)\n",
              slope);
  std::printf(
      "paper reference: 277 MB at N=1024; our Ex at the same N appears above "
      "(same order, same quadratic shape).\n");

  // Per-round traffic profile at one representative size: the INIT round is
  // O(N), the ECHO+ACK round O(N²) — the quadratic term in one picture.
  {
    std::uint32_t n = 256;
    sim::Testbed bed(bench::bench_config(n, 5, protocol::ChannelMode::kAccounted));
    bed.network().meter().enable_timeline(bed.config().effective_round());
    Bytes payload = to_bytes("profile payload");
    bed.build([&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                  protocol::PeerConfig cfg, const sgx::SimIAS& ias)
                  -> std::unique_ptr<protocol::PeerEnclave> {
      return std::make_unique<protocol::ErbNode>(platform, id, host, cfg, ias,
                                                 NodeId{0},
                                                 id == 0 ? payload : Bytes{});
    });
    bed.start();
    bed.run_rounds(4);
    std::printf("\nper-round traffic at N=%u (KiB): ", n);
    for (std::uint64_t b : bed.network().meter().timeline()) {
      std::printf("%.1f ", static_cast<double>(b) / 1024.0);
    }
    std::printf("\n(round 1 = INIT+ACKs, round 2 = the N^2 ECHO storm)\n");
  }
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
