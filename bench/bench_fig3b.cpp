// Figure 3b — ERNG network traffic (MB) vs N: unoptimized (ERNG-0) against
// optimized (ERNG-1), experimental (Ex) and theoretical (Th).
//
// Paper: ERNG-0 grows cubically; ERNG-1 (with the cluster fixed to 2N/3 at
// these network sizes) cuts traffic ~60% at N = 512, with the asymptotic
// O(N log N) only visible at much larger N (their Th-ERNG-1 curve).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  auto obs = sgxp2p::bench::parse_obs(argc, argv, "fig3b");
  using namespace sgxp2p;
  int max_exp = bench::flag_int(argc, argv, "--max-exp", 7);
  int jobs = bench::sweep_jobs(argc, argv);

  std::printf("=== Figure 3b: ERNG traffic vs N (Ex/Th, basic vs optimized) ===\n\n");

  // Flattened (exponent, variant) sweep: even index = ERNG-0 (basic), odd =
  // ERNG-1 (optimized, the paper's Fig. 3b configuration — cluster fixed to
  // 2N/3, every member initiating; the sampled two-phase regime needs
  // larger N).
  std::size_t count = max_exp >= 2 ? 2 * static_cast<std::size_t>(max_exp - 1)
                                   : 0;
  auto runs = bench::run_sweep<bench::RunStats>(
      count, jobs, [&](std::size_t i) {
        int e = 2 + static_cast<int>(i / 2);
        std::uint32_t n = 1u << e;
        return i % 2 == 0
                   ? bench::run_erng_basic(n, protocol::ChannelMode::kAccounted,
                                           3 + e)
                   : bench::run_erng_opt(n, /*force_fallback=*/true,
                                         protocol::ChannelMode::kAccounted,
                                         3 + e, /*one_phase=*/true);
      });
  std::vector<double> ns, mb0, mb1;
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    ns.push_back(1u << (2 + i / 2));
    mb0.push_back(static_cast<double>(runs[i].bytes) / (1024.0 * 1024.0));
    mb1.push_back(static_cast<double>(runs[i + 1].bytes) / (1024.0 * 1024.0));
  }
  std::size_t mid = ns.size() / 2;
  double c0 = mb0[mid] / std::pow(ns[mid], 3.0);          // Th-ERNG-0: c·N³
  double c1 = mb1[mid] / (ns[mid] * std::log2(ns[mid]));  // Th-ERNG-1: c·N·logN

  stats::Table table({"N", "Ex-ERNG-0 (MB)", "Th-ERNG-0 c*N^3",
                      "Ex-ERNG-1 (MB)", "Th-ERNG-1 c*NlogN",
                      "ERNG-1 saving"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    double saving = (1.0 - mb1[i] / mb0[i]) * 100.0;
    table.add_row({stats::fmt(ns[i], 0), stats::fmt(mb0[i], 3),
                   stats::fmt(c0 * std::pow(ns[i], 3.0), 3),
                   stats::fmt(mb1[i], 3),
                   stats::fmt(c1 * ns[i] * std::log2(ns[i]), 3),
                   stats::fmt(saving, 1) + "%"});
  }
  table.print();

  std::printf("\nmeasured ERNG-0 scaling exponent: %.2f (theory: 3)\n",
              stats::loglog_slope(ns, mb0));
  std::printf("measured ERNG-1 scaling exponent: %.2f (fallback cluster is "
              "2N/3, so still polynomial at small N — the paper saw the "
              "same and reported the relative saving instead)\n",
              stats::loglog_slope(ns, mb1));
  std::printf(
      "paper reference: ~60%% traffic reduction for ERNG-1 at N=512; our "
      "saving at the top of the sweep appears in the last column.\n");
  sgxp2p::bench::finish_obs(obs);
  return 0;
}
